"""Tests for the suite registry and the declarative bench engine."""

import json
import re
from pathlib import Path

import pytest

from repro.exp import suites
from repro.exp.chaos import ChaosPolicy, ChaosRule
from repro.exp.runner import TrialExecutionError
from repro.exp.scenarios import scenario_names
from repro.exp.suites import (
    SuiteJournal,
    SuiteSpec,
    SuiteUnit,
    derive_smoke_suite,
    get_suite,
    paper_suites,
    run_suite,
    subtrial_key,
    suite_for_artifact,
)

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
PAPER_ARTIFACTS = (
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "table1",
    "table2",
    "table3",
    "table4",
)


def sweep_unit(name="points", **overrides):
    params = {"rates": [0.05], "warmup_cycles": 10, "measure_cycles": 40, "seed": 0}
    params.update(overrides)
    return SuiteUnit(name, "sweep", params)


class TestSpecValidation:
    def test_rejects_empty_units(self):
        with pytest.raises(ValueError, match="at least one unit"):
            SuiteSpec(name="x", description="", units=())

    def test_rejects_duplicate_unit_names(self):
        with pytest.raises(ValueError, match="duplicate unit names"):
            SuiteSpec(name="x", description="", units=(sweep_unit(), sweep_unit()))

    def test_rejects_unknown_unit_kind(self):
        with pytest.raises(ValueError, match="unknown unit kind"):
            SuiteUnit("x", "teleport", {})

    def test_sweep_unit_needs_rates(self):
        with pytest.raises(ValueError, match="rates"):
            SuiteUnit("x", "sweep", {})

    def test_eval_unit_needs_policy(self):
        with pytest.raises(ValueError, match="policy"):
            SuiteUnit("x", "eval", {})

    def test_scenario_unit_needs_scenario(self):
        with pytest.raises(ValueError, match="scenario"):
            SuiteUnit("x", "scenario", {})

    def test_scenario_unit_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeat"):
            SuiteUnit("x", "scenario", {"scenario": "bursty", "repeats": 0})

    def test_train_eval_unit_needs_known_agent(self):
        with pytest.raises(ValueError, match="agent"):
            SuiteUnit("x", "train-eval", {"agent": "sarsa"})

    def test_drl_eval_without_training_spec_rejected(self):
        with pytest.raises(ValueError, match="training"):
            SuiteSpec(
                name="x",
                description="",
                units=(SuiteUnit("e", "eval", {"policy": "drl"}),),
            )


class TestSerialization:
    def test_every_registered_suite_round_trips_through_json(self):
        for spec in suites.all_suites():
            assert SuiteSpec.from_json(spec.to_json()) == spec

    def test_unit_dicts_rebuild_as_units(self):
        spec = get_suite("table1")
        payload = json.loads(spec.to_json())
        rebuilt = SuiteSpec.from_dict(payload)
        assert all(isinstance(unit, SuiteUnit) for unit in rebuilt.units)


class TestRegistryCompleteness:
    def test_all_nine_paper_artifacts_are_registered(self):
        assert {spec.artifact for spec in paper_suites()} >= set(PAPER_ARTIFACTS)

    def test_every_paper_bench_script_maps_to_a_registered_suite(self):
        scripts = sorted(BENCH_DIR.glob("bench_*.py"))
        assert scripts, "benchmarks/ directory not found"
        artifacts = {spec.artifact for spec in paper_suites()}
        for path in scripts:
            match = re.match(r"bench_((?:fig|table)\d+)_", path.name)
            if match:
                assert match.group(1) in artifacts, (
                    f"{path.name} has no registered suite for {match.group(1)}"
                )

    def test_every_suite_scenario_ref_exists_in_scenario_registry(self):
        for spec in suites.all_suites():
            for unit in spec.units:
                if unit.kind == "scenario":
                    assert unit.params["scenario"] in scenario_names(), (
                        f"suite {spec.name} references unknown scenario "
                        f"{unit.params['scenario']!r}"
                    )

    def test_every_full_suite_has_a_smoke_variant(self):
        for spec in suites.all_suites():
            if spec.is_smoke():
                continue
            smoke = get_suite(f"{spec.name}-smoke")
            assert smoke.smoke_of == spec.name
            assert [unit.name for unit in smoke.units] == [
                unit.name for unit in spec.units
            ]

    def test_suite_for_artifact_returns_the_full_suite(self):
        spec = suite_for_artifact("fig1")
        assert spec.name == "fig1"
        assert not spec.is_smoke()

    def test_suite_for_unknown_artifact_raises(self):
        with pytest.raises(KeyError, match="no suite registered"):
            suite_for_artifact("fig99")

    def test_get_unknown_suite_raises_with_known_names(self):
        with pytest.raises(KeyError, match="known:"):
            get_suite("no-such-suite")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            suites.register_suite(get_suite("fig1"))


class TestSmokeDerivation:
    def test_sweep_sizes_are_capped_and_rates_truncated(self):
        full = get_suite("fig1")
        smoke = get_suite("fig1-smoke")
        for unit in smoke.units:
            assert unit.params["warmup_cycles"] <= 100
            assert unit.params["measure_cycles"] <= 240
            assert len(unit.params["rates"]) <= suites.SMOKE_MAX_RATES
        full_rates = full.units[0].params["rates"]
        smoke_rates = smoke.units[0].params["rates"]
        # The smoke sweep keeps the endpoints, so it still crosses saturation.
        assert smoke_rates[0] == full_rates[0]
        assert smoke_rates[-1] == full_rates[-1]

    def test_training_and_eval_sizes_are_capped(self):
        smoke = get_suite("table4-smoke")
        assert smoke.training["episodes"] <= 2
        assert smoke.training["epoch_cycles"] <= 150
        for unit in smoke.units:
            assert unit.params["num_epochs"] <= 3

    def test_train_eval_episodes_are_capped(self):
        smoke = get_suite("table3-smoke")
        for unit in smoke.units:
            if unit.kind == "train-eval":
                assert unit.params["episodes"] <= 2

    def test_caps_never_grow_small_suites(self):
        tiny = SuiteSpec(
            name="tiny",
            description="",
            units=(sweep_unit(warmup_cycles=5, measure_cycles=20),),
        )
        smoke = derive_smoke_suite(tiny)
        assert smoke.units[0].params["warmup_cycles"] == 5
        assert smoke.units[0].params["measure_cycles"] == 20
        assert smoke.name == "tiny-smoke"
        assert smoke.smoke_of == "tiny"


class TestRunSuite:
    def test_fig1_smoke_is_deterministic_and_writes_the_artifact(self, tmp_path):
        first = run_suite("fig1-smoke", jobs=1, out_dir=tmp_path)
        second = run_suite("fig1-smoke", jobs=1)
        assert json.dumps(first.deterministic_payload(), sort_keys=True) == json.dumps(
            second.deterministic_payload(), sort_keys=True
        )
        payload = json.loads((tmp_path / "fig1-smoke.json").read_text())
        assert payload["suite"] == "fig1-smoke"
        assert payload["schema"] == ["scenario", "cycles", "wall_s", "cycles_per_s"]
        assert [unit["unit"] for unit in payload["units"]] == ["turbo", "powersave"]
        assert all(record["suite"] == "fig1-smoke" for record in payload["runs"])
        assert all(record["cycles_per_s"] > 0 for record in payload["runs"])

    def test_scenario_suite_reports_scenario_summaries(self):
        outcome = run_suite("hotpath-smoke", jobs=1)
        rows = outcome.rows("powersave-idle")
        assert rows[0]["scenario"] == "powersave-idle"
        assert rows[0]["cycles"] == 2 * 150  # smoke caps: 2 epochs x 150 cycles

    def test_training_suite_shares_the_memoized_controller(self):
        smoke = get_suite("fig3-smoke")
        outcome = run_suite(smoke, jobs=1)
        rows = outcome.rows("dqn-train")
        assert len(rows) == smoke.training["episodes"]
        assert outcome.training is suites.train_controller(smoke.training, jobs=1)

    def test_eval_suite_deploys_drl_and_baselines(self):
        outcome = run_suite("table4-smoke", jobs=1)
        for unit in ("4x4/drl", "8x8/static-max"):
            summary = outcome.summary(unit)
            assert summary["epochs"] == 3  # the smoke num_epochs cap
            assert summary["energy_per_flit_pj"] > 0
        assert len(outcome.rows("6x6/heuristic")) == 3

    def test_perf_repeats_resamples_wall_clock_but_not_rows(self):
        single = run_suite("fig1-smoke", jobs=1)
        repeated = run_suite("fig1-smoke", jobs=1, perf_repeats=3)
        assert repeated.units == single.units  # rows/cycles identical
        assert len(repeated.records) == len(single.records)
        with pytest.raises(ValueError, match="perf_repeats"):
            run_suite("fig1-smoke", perf_repeats=0)

    def test_perf_repeats_covers_train_units_too(self):
        single = run_suite("fig3-smoke", jobs=1)
        repeated = run_suite("fig3-smoke", jobs=1, perf_repeats=2)
        assert repeated.units == single.units
        # The repeated run resampled the training wall clock; best-of-N can
        # only improve (lower wall = higher cycles/s) on the cached sample.
        assert repeated.records[0]["cycles_per_s"] >= single.records[0]["cycles_per_s"]

    def test_reuse_evals_memoizes_identical_evaluations(self):
        suites._EVAL_CACHE.clear()
        first = run_suite("table2-smoke", jobs=1, reuse_evals=True)
        cache_size = len(suites._EVAL_CACHE)
        assert cache_size == len(first.units)
        # fig5-smoke shares table2-smoke's five phased policies (same smoke
        # eval params, same weights) and adds the two static mid levels.
        second = run_suite("fig5-smoke", jobs=1, reuse_evals=True)
        assert len(suites._EVAL_CACHE) == cache_size + 2
        for unit in ("phased/drl", "phased/static-min"):
            assert second.unit(unit)["rows"] == first.unit(unit)["rows"]

    def test_outcome_lookup_errors_name_the_known_units(self):
        outcome = run_suite("fig1-smoke", jobs=1)
        with pytest.raises(KeyError, match="turbo"):
            outcome.unit("no-such-unit")
        with pytest.raises(KeyError, match="no summary"):
            outcome.summary("turbo")

    def test_unit_level_engine_override_wins_and_tags_its_record(self):
        spec = SuiteSpec(
            name="adhoc-engines",
            description="one unit pinned to the event engine",
            units=(sweep_unit("pinned", engine="event"), sweep_unit("default")),
        )
        outcome = run_suite(spec, jobs=1)
        by_name = {record["scenario"]: record["engine"] for record in outcome.records}
        assert by_name == {"pinned": "event", "default": "cycle"}

    def test_event_engine_yields_identical_outcomes_with_tagged_records(self):
        cycle_outcome = run_suite("hotpath-smoke", jobs=1)
        event_outcome = run_suite("hotpath-smoke", jobs=1, engine="event")
        assert json.dumps(
            cycle_outcome.deterministic_payload(), sort_keys=True
        ) == json.dumps(event_outcome.deterministic_payload(), sort_keys=True)
        assert all(record["engine"] == "cycle" for record in cycle_outcome.records)
        assert all(record["engine"] == "event" for record in event_outcome.records)

    @pytest.mark.slow
    def test_pool_fanout_matches_serial_outcomes(self):
        serial = run_suite("fig2-smoke", jobs=1)
        parallel = run_suite("fig2-smoke", jobs=2)
        assert json.dumps(serial.deterministic_payload(), sort_keys=True) == json.dumps(
            parallel.deterministic_payload(), sort_keys=True
        )


class TestDiffPayloads:
    def test_identical_payloads_have_no_differences(self):
        payload = {"units": [{"rows": [{"rate": 0.1, "latency": 3.5}]}], "wall_s": 1.0}
        other = json.loads(json.dumps(payload))
        other["wall_s"] = 9.0  # wall clocks are ignored by default
        assert suites.diff_payloads(payload, other) == []

    def test_every_field_is_compared_not_just_throughput(self):
        a = {"runs": [{"scenario": "turbo", "cycles": 100, "cycles_per_s": 1.0}]}
        b = {"runs": [{"scenario": "turbo", "cycles": 120, "cycles_per_s": 2.0}]}
        differences = suites.diff_payloads(a, b)
        assert differences == ["runs[0].cycles: A=100 vs B=120"]

    def test_missing_keys_and_length_mismatches_are_reported(self):
        differences = suites.diff_payloads(
            {"units": [1, 2], "only_a": True}, {"units": [1]}
        )
        assert any("only in A" in line for line in differences)
        assert any("row(s)" in line for line in differences)

    def test_extra_ignores_drop_fields_everywhere(self):
        a = {"runs": [{"engine": "cycle", "cycles": 5}]}
        b = {"runs": [{"engine": "event", "cycles": 5}]}
        assert suites.diff_payloads(a, b) != []
        ignore = suites.DIFF_IGNORED_KEYS | {"engine"}
        assert suites.diff_payloads(a, b, ignore=ignore) == []

    def test_training_payloads_differing_only_in_timing_fields_match(self):
        # Regression test for the episodes_per_second leak: the ignore set
        # once missed training's rate field, so two byte-identical training
        # runs diffed as nondeterministic purely on wall-clock jitter.
        payload = {
            "suite": "fig3",
            "units": [
                {
                    "unit": "dqn-train",
                    "kind": "train",
                    "rows": [{"episode": 0, "mean_reward": 1.25}],
                    "cycles": 4_000,
                    "wall_s": 1.0,
                    "wall_time_s": 1.0,
                    "episodes_per_second": 4.0,
                }
            ],
            "records": [
                {"scenario": "dqn-train", "cycles_per_s": 4_000.0, "wall_s": 1.0}
            ],
            "wall_s_total": 1.0,
            "generated_at": 1_000.0,
        }
        other = json.loads(json.dumps(payload))
        for unit in other["units"]:
            unit["wall_s"] = 2.0
            unit["wall_time_s"] = 2.0
            unit["episodes_per_second"] = 0.5
        other["records"][0].update({"cycles_per_s": 2_000.0, "wall_s": 2.0})
        other["wall_s_total"] = 2.0
        other["generated_at"] = 2_000.0
        assert suites.diff_payloads(payload, other) == []
        # Simulated fields still diff as before.
        other["units"][0]["rows"][0]["mean_reward"] = 9.0
        assert suites.diff_payloads(payload, other) != []

    def test_ignored_keys_come_from_the_telemetry_registry(self):
        from repro.exp.telemetry import NONDETERMINISTIC_FIELDS, WALL_CLOCK_FIELDS

        assert suites.DIFF_IGNORED_KEYS == NONDETERMINISTIC_FIELDS
        assert WALL_CLOCK_FIELDS <= suites.DIFF_IGNORED_KEYS
        assert "episodes_per_second" in suites.DIFF_IGNORED_KEYS
        # Scheduling metadata (retry accounting) is nondeterministic too.
        assert {"attempts", "retries"} <= suites.DIFF_IGNORED_KEYS


class TestTrainController:
    TINY = {
        "preset": "small",
        "episodes": 1,
        "seed": 5,
        "epoch_cycles": 120,
        "episode_epochs": 3,
    }

    def test_memoized_per_spec_and_jobs(self):
        first = suites.train_controller(dict(self.TINY), jobs=1)
        second = suites.train_controller(dict(self.TINY), jobs=1)
        assert first is second
        assert first.episodes == 1

    def test_agent_payload_rebuilds_the_greedy_policy(self):
        result = suites.train_controller(dict(self.TINY), jobs=1)
        experiment = suites.build_experiment(self.TINY)
        policy = suites.build_policy(
            "drl", experiment, suites._agent_payload(result)
        )
        import numpy as np

        observation = np.zeros(experiment.build_feature_extractor().dim)
        action = policy.select_action(observation, None)
        assert action == result.to_policy().select_action(observation, None)


class TestBuildPolicy:
    def test_static_ladder_and_baselines(self):
        experiment = suites.build_experiment({})
        for name in ("static-max", "static-min", "heuristic", "random", "static-L2"):
            policy = suites.build_policy(name, experiment)
            assert hasattr(policy, "select_action")

    def test_drl_without_payload_rejected(self):
        with pytest.raises(ValueError, match="agent payload"):
            suites.build_policy("drl", suites.build_experiment({}))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            suites.build_policy("oracle", suites.build_experiment({}))


class TestBuildExperiment:
    def test_presets_and_overrides(self):
        experiment = suites.build_experiment(
            {"preset": "small", "width": 6, "epoch_cycles": 99}
        )
        assert experiment.simulator.width == 6
        assert experiment.epoch_cycles == 99

    def test_traffic_override(self):
        experiment = suites.build_experiment(
            {"traffic": {"pattern": "hotspot", "rate": 0.2,
                         "kwargs": {"hotspot_fraction": 0.15}}}
        )
        assert experiment.traffic.kind == "synthetic"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment preset"):
            suites.build_experiment({"preset": "enormous"})


class TestSubtrialKey:
    def test_key_is_stable_and_order_insensitive(self):
        a = ("sweep", {"rates": [0.05], "seed": 0})
        b = ("sweep", {"seed": 0, "rates": [0.05]})
        assert subtrial_key(a) == subtrial_key(b)

    def test_key_separates_kind_and_params(self):
        base = subtrial_key(("sweep", {"rates": [0.05], "seed": 0}))
        assert subtrial_key(("eval", {"rates": [0.05], "seed": 0})) != base
        assert subtrial_key(("sweep", {"rates": [0.05], "seed": 1})) != base


class TestSuiteJournal:
    def test_append_and_load_round_trip(self, tmp_path):
        journal = SuiteJournal(tmp_path / "x.journal.jsonl")
        journal.append("k1", unit="u", kind="sweep", attempts=1, payload={"rows": [1]})
        journal.append("k2", unit="u", kind="sweep", attempts=2, payload={"rows": [2]})
        journal.close()
        assert SuiteJournal(journal.path).load() == {
            "k1": {"rows": [1]},
            "k2": {"rows": [2]},
        }

    def test_append_is_idempotent_per_key(self, tmp_path):
        journal = SuiteJournal(tmp_path / "x.journal.jsonl")
        journal.append("k", unit="u", kind="sweep", attempts=1, payload={})
        journal.append("k", unit="u", kind="sweep", attempts=5, payload={"other": 1})
        journal.close()
        assert len(journal.path.read_text().splitlines()) == 1

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "x.journal.jsonl"
        journal = SuiteJournal(path)
        journal.append("k1", unit="u", kind="sweep", attempts=1, payload={"ok": True})
        journal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "payload": {"ok"')  # killed mid-write
        assert SuiteJournal(path).load() == {"k1": {"ok": True}}

    def test_missing_file_loads_empty(self, tmp_path):
        assert SuiteJournal(tmp_path / "none.jsonl").load() == {}


class TestResumableSuites:
    def test_resume_requires_an_out_dir(self):
        with pytest.raises(ValueError, match="resume needs an out_dir"):
            run_suite("fig1-smoke", resume=True)

    def test_resume_satisfies_everything_from_the_journal(self, tmp_path):
        clean = run_suite("fig1-smoke", jobs=1, out_dir=tmp_path)
        journal_path = tmp_path / "fig1-smoke.journal.jsonl"
        rows = [json.loads(line) for line in journal_path.read_text().splitlines()]
        resumed = run_suite("fig1-smoke", jobs=1, out_dir=tmp_path, resume=True)
        assert clean.resumed_subtrials == 0
        assert rows[0]["journal"]["suite"] == "fig1-smoke"
        assert resumed.resumed_subtrials == len([row for row in rows if "key" in row])
        assert suites.diff_payloads(
            clean.deterministic_payload(), resumed.deterministic_payload()
        ) == []

    def test_fresh_run_truncates_a_stale_journal(self, tmp_path):
        path = tmp_path / "fig1-smoke.journal.jsonl"
        path.write_text('{"key": "stale", "payload": {}}\n', encoding="utf-8")
        run_suite("fig1-smoke", jobs=1, out_dir=tmp_path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows and all(row.get("key") != "stale" for row in rows)

    def test_telemetry_rows_carry_attempt_accounting(self):
        rows = []

        class Sink:
            def emit(self, row):
                rows.append(row)

        run_suite("fig1-smoke", jobs=1, telemetry=Sink())
        subtrial_rows = [row for row in rows if row["source"] == "subtrial"]
        assert subtrial_rows
        assert all(
            row["attempts"] >= 1 and row["retries"] == row["attempts"] - 1
            for row in subtrial_rows
        )


class TestSuiteChaos:
    def test_chaos_run_matches_clean_run(self):
        clean = run_suite("fig1-smoke", jobs=1)
        chaos = ChaosPolicy(rules=(ChaosRule("raise", 0), ChaosRule("raise", 3)))
        perturbed = run_suite("fig1-smoke", jobs=1, chaos=chaos)
        assert suites.diff_payloads(
            clean.deterministic_payload(), perturbed.deterministic_payload()
        ) == []

    def test_poison_subtrial_quarantines_then_resume_completes(self, tmp_path):
        clean = run_suite("fig1-smoke", jobs=1)
        poison = ChaosPolicy(rules=(ChaosRule("raise", 2),))
        with pytest.raises(TrialExecutionError):
            run_suite("fig1-smoke", jobs=1, out_dir=tmp_path, retries=0, chaos=poison)
        journal = SuiteJournal(tmp_path / "fig1-smoke.journal.jsonl").load()
        assert journal  # the siblings landed before the quarantine surfaced
        resumed = run_suite("fig1-smoke", jobs=1, out_dir=tmp_path, resume=True)
        assert resumed.resumed_subtrials == len(journal)
        assert suites.diff_payloads(
            clean.deterministic_payload(), resumed.deterministic_payload()
        ) == []
