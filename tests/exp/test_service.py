"""The distributed suite service: lease accounting, fleet e2e, parity.

The :class:`LeaseBook` tests fake the clock and the workers (a "silent
worker" is simply a grant that never reports), which is exactly why the
book is socket-free.  The end-to-end tests run a real broker with real
``ServiceWorker`` pull loops on localhost threads and pin the determinism
contract: a fleet run — even one with a worker dying mid-suite — produces
a payload ``diff_payloads``-identical to the in-process reference.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.exp.chaos import ChaosPolicy, ChaosRule
from repro.exp.execution import ExecutionConfig, SupervisionPolicy
from repro.exp.service import (
    LeaseBook,
    ServiceWorker,
    SuiteBroker,
    parse_workers_url,
)
from repro.exp.suites import JournalMismatchError, diff_payloads, run_suite
from repro.exp.telemetry import NONDETERMINISTIC_FIELDS
from repro.exp.wire import recv_frame, send_frame


def _stable(records) -> list[dict]:
    """Rows minus the fields two equal runs may legitimately differ in
    (wall clocks and scheduling metadata — what ``suite diff`` ignores)."""
    return [
        {k: v for k, v in row.items() if k not in NONDETERMINISTIC_FIELDS}
        for row in records
    ]


class TestParseWorkersUrl:
    def test_tcp_scheme(self):
        assert parse_workers_url("tcp://10.0.0.5:7077") == ("10.0.0.5", 7077)

    def test_bare_host_port(self):
        assert parse_workers_url("localhost:9") == ("localhost", 9)

    def test_rejects_other_schemes(self):
        with pytest.raises(ValueError, match="tcp"):
            parse_workers_url("http://host:1")

    def test_rejects_missing_port(self):
        with pytest.raises(ValueError):
            parse_workers_url("tcp://hostonly")
        with pytest.raises(ValueError):
            parse_workers_url("host:notaport")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _book(n=3, *, timeout_s=10.0, max_retries=2, clock=None):
    clock = clock or FakeClock()
    book = LeaseBook(
        [("unit", {"i": i}) for i in range(n)],
        [f"trial-{i}" for i in range(n)],
        timeout_s=timeout_s,
        max_retries=max_retries,
        clock=clock,
    )
    return book, clock


class TestLeaseBook:
    def test_grant_charges_an_attempt_and_sets_a_deadline(self):
        book, clock = _book(timeout_s=5.0)
        lease = book.grant("w1")
        assert lease.index == 0
        assert lease.attempt == 0  # zero-based, chaos rules address it
        assert lease.deadline == pytest.approx(clock.now + 5.0)
        assert book.attempts[0] == 1

    def test_no_work_grants_none(self):
        book, _ = _book(n=1)
        assert book.grant("w1") is not None
        assert book.grant("w2") is None  # queued nothing, one lease out

    def test_complete_records_scheduling_and_settles(self):
        book, _ = _book(n=1)
        lease = book.grant("w1")
        assert book.complete(lease.lease_id, {"rows": 1}) is lease
        assert book.settled()
        assert book.results == [{"rows": 1}]
        assert book.scheduling[0] == {"worker_id": "w1", "lease_id": lease.lease_id}

    def test_silent_worker_expires_and_work_is_stolen(self):
        # The headline work-stealing path: a worker leases a subtrial and
        # never reports (no heartbeat, no result).  The deadline passes,
        # the lease re-queues, another worker finishes the job.
        book, clock = _book(n=1, timeout_s=5.0)
        silent = book.grant("silent")
        assert book.expire() == []  # not yet due
        clock.advance(5.1)
        expired = book.expire()
        assert [lease.lease_id for lease in expired] == [silent.lease_id]
        retry = book.grant("healthy")
        assert retry.index == 0
        assert retry.attempt == 1
        assert book.complete(retry.lease_id, {"ok": True}) is retry
        assert book.settled()
        assert book.scheduling[0]["worker_id"] == "healthy"

    def test_heartbeats_keep_a_slow_lease_alive(self):
        book, clock = _book(n=1, timeout_s=5.0)
        lease = book.grant("slow")
        clock.advance(4.0)
        assert book.heartbeat(lease.lease_id) is True
        clock.advance(4.0)  # past the original deadline, inside the extended
        assert book.expire() == []
        assert book.heartbeat("L999") is False

    def test_late_result_from_an_expired_lease_is_discarded(self):
        book, clock = _book(n=1, timeout_s=1.0)
        stale = book.grant("slow")
        clock.advance(2.0)
        book.expire()
        fresh = book.grant("fast")
        assert book.complete(fresh.lease_id, {"winner": "fast"}) is fresh
        # The slow worker finally reports; first-wins discards it.
        assert book.complete(stale.lease_id, {"winner": "slow"}) is None
        assert book.results == [{"winner": "fast"}]
        assert book.scheduling[0]["worker_id"] == "fast"

    def test_attempts_exceeding_the_budget_quarantine(self):
        # max_retries=1 → two attempts, mirroring SupervisedTrialPool.
        book, clock = _book(n=1, timeout_s=1.0, max_retries=1)
        book.grant("w")
        clock.advance(2.0)
        book.expire()
        book.grant("w")
        clock.advance(2.0)
        book.expire()
        assert book.grant("w") is None
        assert book.settled()
        [failure] = book.failures
        assert failure.index == 0
        assert failure.attempts == 2
        assert failure.kind == "timeout"

    def test_explicit_failures_requeue_then_quarantine(self):
        book, _ = _book(n=1, max_retries=0)
        lease = book.grant("w")
        book.fail(lease.lease_id, "boom", kind="error")
        [failure] = book.failures
        assert failure.kind == "error"
        assert "boom" in failure.error

    def test_dead_worker_releases_every_held_lease(self):
        book, _ = _book(n=3)
        a = book.grant("doomed")
        b = book.grant("doomed")
        c = book.grant("survivor")
        released = book.release_worker("doomed")
        assert {lease.lease_id for lease in released} == {a.lease_id, b.lease_id}
        # Both re-queued; the survivor's lease is untouched.
        assert book.grant("survivor").index in (a.index, b.index)
        assert book.complete(c.lease_id, {}) is c


def _start_worker(address: str, **kwargs) -> threading.Thread:
    worker = ServiceWorker(address, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return thread


def _artifact(path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.slow
class TestFleetEndToEnd:
    def _fleet_run(self, tmp_path, *, worker_kwargs=(), config=None):
        fleet_dir = tmp_path / "fleet"
        with SuiteBroker(out_dir=fleet_dir) as broker:
            threads = [
                _start_worker(broker.address, **dict(kwargs))
                for kwargs in (worker_kwargs or ({}, {}))
            ]
            outcome = run_suite(
                "fig1-smoke", config=config, workers=broker.address
            )
        for thread in threads:
            thread.join(timeout=5.0)
        return outcome, fleet_dir / "fig1-smoke.json"

    def test_fleet_run_matches_in_process_byte_for_byte(self, tmp_path):
        reference = run_suite(
            "fig1-smoke", config=ExecutionConfig(), out_dir=tmp_path / "ref"
        )
        outcome, artifact = self._fleet_run(
            tmp_path, worker_kwargs=({"worker_id": "w1"}, {"worker_id": "w2"})
        )
        assert diff_payloads(
            _artifact(tmp_path / "ref" / "fig1-smoke.json"), _artifact(artifact)
        ) == []
        assert _stable(outcome.records) == _stable(reference.records)

    def test_worker_killed_mid_suite_still_matches(self, tmp_path):
        reference = run_suite("fig1-smoke", config=ExecutionConfig())
        # The chaotic worker drops its connection on its very first lease
        # (allow_kill=False degrades `kill` to an abrupt close for thread
        # workers); the broker re-queues and the healthy worker absorbs it.
        chaos = ChaosPolicy(rules=(ChaosRule("kill", ""),))
        outcome, artifact = self._fleet_run(
            tmp_path,
            worker_kwargs=(
                {"worker_id": "doomed", "chaos": chaos},
                {"worker_id": "healthy"},
            ),
        )
        assert _stable(outcome.records) == _stable(reference.records)
        payload = _artifact(artifact)
        assert diff_payloads(payload, payload) == []

    def test_lease_metadata_lands_in_telemetry_not_in_the_artifact(self, tmp_path):
        class Sink:
            def __init__(self):
                self.rows = []

            def emit(self, row):
                self.rows.append(dict(row))

        sink = Sink()
        fleet_dir = tmp_path / "fleet"
        with SuiteBroker(out_dir=fleet_dir) as broker:
            threads = [_start_worker(broker.address, worker_id="only")]
            outcome = run_suite(
                "fig1-smoke", workers=broker.address, telemetry=sink
            )
        for thread in threads:
            thread.join(timeout=5.0)
        subtrial_rows = [r for r in sink.rows if r.get("source") == "service"]
        assert subtrial_rows, "fleet runs must tag telemetry source=service"
        assert all(r.get("worker_id") == "only" for r in subtrial_rows)
        assert all(r.get("lease_id") for r in subtrial_rows)
        # ...but the artefact stays free of scheduling noise.
        assert "worker_id" not in json.dumps(outcome.records)

    def test_resume_refuses_a_journal_from_another_config(self, tmp_path):
        fleet_dir = tmp_path / "fleet"
        with SuiteBroker(out_dir=fleet_dir) as broker:
            threads = [_start_worker(broker.address)]
            run_suite("fig1-smoke", workers=broker.address)
            with pytest.raises(JournalMismatchError):
                run_suite(
                    "fig1-smoke",
                    config=ExecutionConfig(perf_repeats=2),
                    workers=broker.address,
                    resume=True,
                )
        for thread in threads:
            thread.join(timeout=5.0)

    def test_malformed_first_frame_gets_a_structured_reject(self):
        with SuiteBroker() as broker:
            with socket.create_connection(("127.0.0.1", broker.port)) as conn:
                body = b"this is not json"
                conn.sendall(len(body).to_bytes(4, "big") + body)
                reply = recv_frame(conn)
        assert reply["type"] == "error"
        assert reply["kind"] == "protocol"

    def test_unknown_first_frame_type_is_rejected(self):
        with SuiteBroker() as broker:
            with socket.create_connection(("127.0.0.1", broker.port)) as conn:
                send_frame(conn, {"type": "teapot"})
                reply = recv_frame(conn)
        assert reply["type"] == "error"

    def test_stalled_worker_lease_expires_and_is_stolen(self, tmp_path):
        reference = run_suite("fig1-smoke", config=ExecutionConfig())
        chaos = ChaosPolicy(rules=(ChaosRule("stall", "", stall_s=2.0),))
        fleet_dir = tmp_path / "fleet"
        with SuiteBroker(out_dir=fleet_dir, lease_timeout_s=0.3) as broker:
            threads = [
                _start_worker(broker.address, worker_id="molasses", chaos=chaos),
                _start_worker(broker.address, worker_id="brisk"),
            ]
            outcome = run_suite(
                "fig1-smoke",
                config=ExecutionConfig(
                    supervision=SupervisionPolicy(timeout_s=0.3, max_retries=5)
                ),
                workers=broker.address,
            )
        for thread in threads:
            thread.join(timeout=10.0)
        assert _stable(outcome.records) == _stable(reference.records)
