"""Tests for the hot-path engine microbenchmark helpers."""

import pytest

from repro.exp.bench import (
    HOTPATH_SCENARIOS,
    RESULTS_SCHEMA,
    measure_engine,
    perf_record,
    run_hotpath_benchmark,
)


class TestPerfRecord:
    def test_shared_schema_fields(self):
        record = perf_record("uniform", 4_000, 2.0)
        assert set(RESULTS_SCHEMA) <= set(record)
        assert record["cycles_per_s"] == pytest.approx(2_000.0)

    def test_zero_wall_time_is_safe(self):
        # A run under timer resolution is unmeasurable, not infinitely slow:
        # the rate must be null (0.0 would read as a catastrophic regression).
        record = perf_record("uniform", 100, 0.0)
        assert record["wall_s"] == 0.0
        assert record["cycles_per_s"] is None

    def test_extra_keys_pass_through(self):
        assert perf_record("uniform", 1, 1.0, engine="naive")["engine"] == "naive"


class TestMeasureEngine:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            measure_engine("uniform", "turbo")

    def test_both_engines_simulate_identically(self):
        naive_record, naive_result = measure_engine(
            "powersave-idle", "naive", epochs=1, epoch_cycles=150
        )
        activity_record, activity_result = measure_engine(
            "powersave-idle", "activity", epochs=1, epoch_cycles=150
        )
        assert naive_record["engine"] == "naive"
        assert activity_record["engine"] == "activity"
        assert naive_record["cycles"] == activity_record["cycles"] == 150
        assert naive_result.epochs == activity_result.epochs
        assert naive_result.idle_cycles == 0
        assert activity_result.idle_cycles > 0


class TestRunHotpathBenchmark:
    def test_default_scenarios_are_registered(self):
        assert "powersave-idle" in HOTPATH_SCENARIOS
        assert "bursty" in HOTPATH_SCENARIOS

    def test_small_run_payload_shape(self):
        payload = run_hotpath_benchmark(
            ["powersave-idle"], epochs=1, epoch_cycles=100, repeats=2
        )
        assert payload["schema"] == list(RESULTS_SCHEMA)
        assert payload["repeats"] == 2
        assert len(payload["runs"]) == 2  # best run per engine
        assert payload["telemetry_equivalent"] == {"powersave-idle": True}
        assert payload["speedups"]["powersave-idle"] > 0.0

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_hotpath_benchmark(["uniform"], repeats=0)
