"""The unified ExecutionConfig API: validation, serialization, shims.

The config is simultaneously the local API surface (``run_suite(spec,
config=...)``) and the distributed service's lease payload, so the tests
pin both halves: value semantics (frozen, hashable, validated) and
bit-for-bit serialization (JSON for the wire, pickle for process pools),
plus the deprecation shim that keeps every pre-config keyword call site
working.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.exp.chaos import ChaosPolicy, ChaosRule
from repro.exp.execution import (
    DEFAULT_ENGINE,
    ExecutionConfig,
    SupervisionPolicy,
    coalesce_execution_config,
)


class TestSupervisionPolicy:
    def test_defaults(self):
        policy = SupervisionPolicy()
        assert policy.timeout_s is None
        assert policy.max_retries == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SupervisionPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_rebuilds=-1)

    def test_backoff_grows_deterministically(self):
        policy = SupervisionPolicy(backoff_s=0.1, backoff_factor=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    def test_dict_round_trip(self):
        policy = SupervisionPolicy(timeout_s=1.5, max_retries=0, backoff_s=0.0)
        assert SupervisionPolicy.from_dict(policy.to_dict()) == policy


class TestExecutionConfig:
    def test_defaults_resolve_to_the_reference_path(self):
        config = ExecutionConfig()
        assert config.jobs == 1
        assert config.train_jobs == 1
        assert config.engine is None
        assert config.resolved_engine() == DEFAULT_ENGINE
        assert config.perf_repeats == 1
        assert config.reuse_evals is False
        assert config.supervision == SupervisionPolicy()
        assert config.chaos is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(jobs=0)
        with pytest.raises(ValueError):
            ExecutionConfig(train_jobs=0)
        with pytest.raises(ValueError):
            ExecutionConfig(perf_repeats=0)

    def test_frozen_and_hashable(self):
        config = ExecutionConfig(jobs=2)
        with pytest.raises(AttributeError):
            config.jobs = 3
        assert config == ExecutionConfig(jobs=2)
        assert hash(config) == hash(ExecutionConfig(jobs=2))

    def test_json_round_trip_is_identity(self):
        config = ExecutionConfig(
            jobs=3,
            train_jobs=2,
            engine="event",
            perf_repeats=4,
            reuse_evals=True,
            supervision=SupervisionPolicy(timeout_s=9.0, max_retries=1),
            chaos=ChaosPolicy(rules=(ChaosRule("kill", "turbo"),), seed=7),
        )
        restored = ExecutionConfig.from_json(config.to_json())
        assert restored == config
        # The wire path re-serializes; the JSON itself must be stable too.
        assert restored.to_json() == config.to_json()

    def test_json_is_sorted_and_plain(self):
        payload = json.loads(ExecutionConfig().to_json())
        assert list(payload) == sorted(payload)
        assert payload["chaos"] is None

    def test_pickle_round_trip(self):
        config = ExecutionConfig(
            jobs=2, supervision=SupervisionPolicy(timeout_s=3.0)
        )
        assert pickle.loads(pickle.dumps(config)) == config

    def test_fingerprint_covers_only_the_outcome_affecting_half(self):
        base = ExecutionConfig()
        # Scheduling-only knobs reorder wall clock, never the payload.
        assert ExecutionConfig(jobs=8).fingerprint() == base.fingerprint()
        assert ExecutionConfig(reuse_evals=True).fingerprint() == base.fingerprint()
        assert (
            ExecutionConfig(
                supervision=SupervisionPolicy(timeout_s=1.0, max_retries=0)
            ).fingerprint()
            == base.fingerprint()
        )
        # Outcome-affecting knobs must change the journal-header hash.
        assert ExecutionConfig(train_jobs=2).fingerprint() != base.fingerprint()
        assert ExecutionConfig(engine="event").fingerprint() != base.fingerprint()
        assert ExecutionConfig(perf_repeats=2).fingerprint() != base.fingerprint()

    def test_fingerprint_resolves_the_default_engine(self):
        # engine=None and engine="cycle" run the same simulations, so a
        # resume across the two spellings must be legal.
        assert (
            ExecutionConfig(engine=None).fingerprint()
            == ExecutionConfig(engine=DEFAULT_ENGINE).fingerprint()
        )


class TestCoalesceExecutionConfig:
    def test_config_only_passes_through_silently(self, recwarn):
        config = ExecutionConfig(jobs=4)
        assert coalesce_execution_config(config, caller="t") is config
        assert not recwarn.list

    def test_no_arguments_builds_the_default(self, recwarn):
        assert coalesce_execution_config(None, caller="t") == ExecutionConfig()
        assert not recwarn.list

    def test_legacy_knobs_override_and_warn_by_name(self):
        with pytest.warns(DeprecationWarning, match=r"t\(engine, jobs=\.\.\.\)"):
            config = coalesce_execution_config(
                None, caller="t", jobs=3, engine="event"
            )
        assert config.jobs == 3
        assert config.engine == "event"

    def test_timeout_and_retries_fold_into_supervision(self):
        base = ExecutionConfig(
            supervision=SupervisionPolicy(backoff_s=0.5, max_retries=5)
        )
        with pytest.warns(DeprecationWarning):
            config = coalesce_execution_config(
                base, caller="t", timeout_s=2.0, retries=0
            )
        assert config.supervision.timeout_s == 2.0
        assert config.supervision.max_retries == 0
        # Untouched supervision fields survive the fold.
        assert config.supervision.backoff_s == 0.5

    def test_policy_is_an_alias_for_supervision(self):
        policy = SupervisionPolicy(timeout_s=7.0)
        with pytest.warns(DeprecationWarning):
            config = coalesce_execution_config(None, caller="t", policy=policy)
        assert config.supervision is policy

    def test_unknown_knob_raises_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            coalesce_execution_config(None, caller="t", workers=2)

    def test_none_valued_legacy_knobs_do_not_warn(self, recwarn):
        config = ExecutionConfig(jobs=2)
        out = coalesce_execution_config(
            config, caller="t", jobs=None, engine=None, timeout_s=None
        )
        assert out is config
        assert not recwarn.list


class TestEntryPointShims:
    """The migrated entry points still accept (and warn on) legacy kwargs."""

    def test_run_suite_legacy_kwargs_warn(self):
        from repro.exp.suites import run_suite

        with pytest.warns(DeprecationWarning, match="run_suite"):
            outcome = run_suite("fig1-smoke", jobs=1)
        assert outcome.records

    def test_run_suite_config_shape_is_silent(self, recwarn):
        from repro.exp.suites import run_suite

        run_suite("fig1-smoke", config=ExecutionConfig())
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_legacy_and_config_shapes_agree(self):
        from repro.exp.suites import run_suite

        from repro.exp.telemetry import NONDETERMINISTIC_FIELDS

        def stable(records):
            return [
                {k: v for k, v in row.items() if k not in NONDETERMINISTIC_FIELDS}
                for row in records
            ]

        via_config = run_suite("fig1-smoke", config=ExecutionConfig(jobs=1))
        with pytest.warns(DeprecationWarning):
            via_kwargs = run_suite("fig1-smoke", jobs=1)
        assert stable(via_config.records) == stable(via_kwargs.records)
