"""Tests for the batch-dispatch surface: Subtrial, grouping, suite parity."""

import json

import pytest

import repro.exp.suites as suites
from repro.cli import main
from repro.exp.execution import ExecutionConfig
from repro.exp.suites import (
    BATCH_GROUP_AXES,
    Subtrial,
    SuiteSpec,
    SuiteUnit,
    diff_payloads,
    expand_unit,
    group_subtrials,
    run_suite,
    run_suite_subtrial,
    subtrial_key,
)


class TestSubtrial:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown subtrial kind 'warp'"):
            Subtrial("warp", {})

    def test_unpacks_like_the_legacy_tuple(self):
        kind, params = Subtrial("eval", {"policy": "random"})
        assert kind == "eval"
        assert params == {"policy": "random"}

    def test_params_are_copied_from_the_caller(self):
        source = {"policy": "random"}
        subtrial = Subtrial("eval", source)
        source["policy"] = "mutated"
        assert subtrial.params == {"policy": "random"}

    def test_wire_round_trip(self):
        subtrial = Subtrial("sweep", {"rate": 0.1, "pattern": "uniform"})
        assert Subtrial.from_wire(subtrial.to_wire()) == subtrial

    def test_key_is_stable_and_agent_fingerprinted(self):
        a = Subtrial("eval", {"policy": "random", "seed": 1})
        b = Subtrial("eval", {"seed": 1, "policy": "random"})
        assert a.key == b.key
        assert a.key != Subtrial("eval", {"policy": "random", "seed": 2}).key
        # The batch kind hashes member keys, not raw params.
        batch = Subtrial("batch", {"subtrials": [a.to_wire()]})
        assert batch.key != a.key
        assert batch.key == Subtrial("batch", {"subtrials": [b.to_wire()]}).key

    def test_coerce_accepts_subtrials_silently_and_warns_on_tuples(self):
        subtrial = Subtrial("eval", {"policy": "random"})
        assert Subtrial.coerce(subtrial, caller="test") is subtrial
        with pytest.warns(DeprecationWarning, match="test.*deprecated"):
            coerced = Subtrial.coerce(("eval", {"policy": "random"}), caller="test")
        assert coerced == subtrial

    def test_subtrial_key_shim_warns_on_tuples(self):
        subtrial = Subtrial("eval", {"policy": "random"})
        with pytest.warns(DeprecationWarning):
            legacy = subtrial_key(("eval", {"policy": "random"}))
        assert legacy == subtrial.key == subtrial_key(subtrial)

    def test_run_suite_subtrial_shim_warns_on_tuples(self):
        spec = SuiteUnit(
            name="point",
            kind="sweep",
            params={"rates": [0.05], "warmup_cycles": 20, "measure_cycles": 40},
        )
        (subtrial,) = expand_unit(spec)
        assert isinstance(subtrial, Subtrial)
        fresh = run_suite_subtrial(subtrial)  # typed call: no warning
        with pytest.warns(DeprecationWarning, match="run_suite_subtrial"):
            legacy = run_suite_subtrial(tuple(subtrial))
        assert legacy["rows"] == fresh["rows"]


class TestGroupSubtrials:
    def _sweeps(self, rates, **extra):
        return [
            Subtrial("sweep", {"pattern": "uniform", "rate": rate, **extra})
            for rate in rates
        ]

    def test_partition_is_exact_and_order_preserving(self):
        subtrials = self._sweeps([0.1, 0.2]) + [
            Subtrial("train-eval", {"agent": "dqn"}),
            Subtrial("eval", {"policy": "random"}),
            Subtrial("eval", {"policy": "static-max"}),
        ]
        groups = group_subtrials(subtrials, max_group=8)
        flat = [index for group in groups for index in group]
        assert sorted(flat) == list(range(len(subtrials)))
        assert [group[0] for group in groups] == sorted(group[0] for group in groups)
        assert all(group == sorted(group) for group in groups)

    def test_groups_split_on_params_outside_the_axes(self):
        subtrials = self._sweeps([0.1, 0.2]) + self._sweeps([0.1, 0.2], width=8)
        groups = group_subtrials(subtrials, max_group=8)
        assert groups == [[0, 1], [2, 3]]

    def test_seed_and_rate_may_differ_within_a_sweep_group(self):
        subtrials = [
            Subtrial("sweep", {"pattern": "uniform", "rate": 0.1, "seed": 0}),
            Subtrial("sweep", {"pattern": "uniform", "rate": 0.2, "seed": 5}),
        ]
        assert group_subtrials(subtrials) == [[0, 1]]

    def test_max_group_chunks(self):
        groups = group_subtrials(self._sweeps([0.1, 0.2, 0.3, 0.4, 0.5]), max_group=2)
        assert groups == [[0, 1], [2, 3], [4]]
        with pytest.raises(ValueError, match="positive"):
            group_subtrials([], max_group=0)

    def test_train_eval_is_never_grouped(self):
        subtrials = [Subtrial("train-eval", {"agent": "dqn"})] * 3
        assert group_subtrials(subtrials) == [[0], [1], [2]]
        assert "train-eval" not in BATCH_GROUP_AXES


class TestExecutionConfigBatch:
    def test_validation_and_round_trip(self):
        with pytest.raises(ValueError, match="batch"):
            ExecutionConfig(batch=-1)
        config = ExecutionConfig(batch=4)
        assert ExecutionConfig.from_json(config.to_json()) == config
        assert "batch" in json.loads(config.to_json())

    def test_batch_is_excluded_from_the_fingerprint(self):
        # Grouping only changes how subtrials ship, not what they compute,
        # so a journal written at any batch setting resumes at any other.
        assert ExecutionConfig(batch=8).fingerprint() == ExecutionConfig().fingerprint()

    def test_old_wire_payloads_still_load(self):
        payload = ExecutionConfig().to_dict()
        del payload["batch"]
        assert ExecutionConfig.from_dict(payload).batch == 0


def _eval_suite(name="batch-parity-test"):
    policies = ("static-max", "static-min", "heuristic", "random")
    return SuiteSpec(
        name=name,
        description="batch dispatch parity fixture",
        units=tuple(
            SuiteUnit(
                name=f"eval-{policy}",
                kind="eval",
                params={"policy": policy, "preset": "small", "num_epochs": 3},
            )
            for policy in policies
        ),
    )


class TestSuiteBatchDispatch:
    def test_batched_run_matches_cycle_reference(self):
        reference = run_suite(_eval_suite(), config=ExecutionConfig(engine="cycle"))
        batched = run_suite(
            _eval_suite(), config=ExecutionConfig(engine="numpy", batch=4)
        )
        assert not diff_payloads(
            reference.deterministic_payload(),
            batched.deterministic_payload(),
            ignore={"engine"},
        )

    def test_batch_engages_the_stacked_eval_path(self, monkeypatch):
        calls = []
        original = suites._stacked_eval_payloads

        def spy(members):
            result = original(members)
            calls.append((len(members), result is not None))
            return result

        monkeypatch.setattr(suites, "_stacked_eval_payloads", spy)
        run_suite(_eval_suite(), config=ExecutionConfig(engine="numpy", batch=4))
        assert calls == [(4, True)]

    def test_batch_is_ignored_without_engine_support(self, monkeypatch):
        # config.batch with a non-batch engine must not group anything.
        monkeypatch.setattr(
            suites,
            "group_subtrials",
            lambda *a, **k: pytest.fail("grouping ran for a non-batch engine"),
        )
        run_suite(_eval_suite(), config=ExecutionConfig(engine="cycle", batch=4))

    def test_journal_rows_are_member_level_and_resume_any_setting(self, tmp_path):
        batched = run_suite(
            _eval_suite(),
            config=ExecutionConfig(engine="numpy", batch=4),
            out_dir=tmp_path,
        )
        rows = [
            json.loads(line)
            for line in (tmp_path / "batch-parity-test.journal.jsonl")
            .read_text()
            .splitlines()
        ]
        payload_rows = [row for row in rows if "journal" not in row]
        assert len(payload_rows) == 4
        assert all(row["kind"] == "eval" for row in payload_rows)
        resumed = run_suite(
            _eval_suite(),
            config=ExecutionConfig(engine="numpy"),
            out_dir=tmp_path,
            resume=True,
        )
        assert resumed.resumed_subtrials == 4
        assert not diff_payloads(
            batched.deterministic_payload(), resumed.deterministic_payload()
        )

    def test_heterogeneous_batch_members_fall_back_sequentially(self):
        members = [
            Subtrial(
                "sweep",
                {
                    "pattern": "uniform",
                    "rate": 0.05,
                    "warmup_cycles": 20,
                    "measure_cycles": 40,
                },
            ),
            Subtrial("eval", {"policy": "random", "preset": "small", "num_epochs": 2}),
        ]
        batch = Subtrial(
            "batch", {"subtrials": [member.to_wire() for member in members]}
        )
        payload = run_suite_subtrial(batch)
        parts = payload["batch"]
        assert len(parts) == 2
        for member, part in zip(members, parts):
            solo = run_suite_subtrial(member)
            assert part["rows"] == solo["rows"]

    def test_empty_batch_subtrial_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            run_suite_subtrial(Subtrial("batch", {"subtrials": []}))


class TestEnginesListCLI:
    def test_engines_list_shows_capabilities(self, capsys):
        assert main(["engines", "list"]) == 0
        out = capsys.readouterr().out
        assert "cycle (default)" in out
        assert "numpy" in out
        assert "batch" in out
        assert "flow" in out
        assert "approximate" in out
        assert "--engine accepts: cycle, event, flow, numpy, auto" in out

    def test_suite_run_rejects_the_batch_only_engine(self, capsys):
        assert main(["suite", "run", "fig1-smoke", "--engine", "batch"]) == 2
        assert "unknown engine" in capsys.readouterr().err
