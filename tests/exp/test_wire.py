"""The service wire format: framing edge cases and codec bit-exactness.

Everything runs against an in-memory fake socket, which is the point of
keeping the framing functions duck-typed: partial reads, clean closes,
mid-frame deaths and hostile length prefixes are all just byte-buffer
manipulations here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exp.wire import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameTooLarge,
    MalformedFrame,
    TruncatedFrame,
    WireError,
    encode_frame,
    from_jsonable,
    recv_exactly,
    recv_frame,
    send_frame,
    to_jsonable,
)
from repro.rl.dqn import DQNConfig


class FakeSocket:
    """A byte-buffer peer; ``chunk`` caps each recv to force short reads."""

    def __init__(self, data: bytes = b"", chunk: int | None = None):
        self._buffer = bytearray(data)
        self._chunk = chunk
        self.sent = bytearray()

    def sendall(self, data: bytes) -> None:
        self.sent += data

    def recv(self, count: int) -> bytes:
        if not self._buffer:
            return b""
        take = min(count, self._chunk or count)
        out = bytes(self._buffer[:take])
        del self._buffer[:take]
        return out


class TestFraming:
    def test_send_then_recv_round_trips(self):
        sock = FakeSocket()
        send_frame(sock, {"type": "ready", "n": 3})
        echo = FakeSocket(bytes(sock.sent))
        assert recv_frame(echo) == {"type": "ready", "n": 3}

    def test_partial_reads_reassemble(self):
        # One byte per recv: the 4-byte prefix and the body both arrive in
        # dribbles and must be looped back together.
        frame = encode_frame({"k": "v", "list": [1, 2, 3]})
        sock = FakeSocket(frame, chunk=1)
        assert recv_frame(sock) == {"k": "v", "list": [1, 2, 3]}

    def test_back_to_back_frames_do_not_bleed(self):
        data = encode_frame({"a": 1}) + encode_frame({"b": 2})
        sock = FakeSocket(data, chunk=3)
        assert recv_frame(sock) == {"a": 1}
        assert recv_frame(sock) == {"b": 2}

    def test_clean_close_between_frames(self):
        with pytest.raises(ConnectionClosed):
            recv_frame(FakeSocket(b""))

    def test_death_mid_frame_is_truncation(self):
        frame = encode_frame({"key": "value"})
        with pytest.raises(TruncatedFrame):
            recv_frame(FakeSocket(frame[:-3]))
        # ...and mid-prefix too.
        with pytest.raises(TruncatedFrame):
            recv_frame(FakeSocket(frame[:2]))

    def test_truncation_is_a_kind_of_close(self):
        # Peers that only care about "the conversation ended" catch the
        # base class; the broker distinguishes them for logging only.
        assert issubclass(TruncatedFrame, ConnectionClosed)
        assert issubclass(ConnectionClosed, WireError)

    def test_recv_exactly_loops_over_short_reads(self):
        sock = FakeSocket(b"abcdefgh", chunk=3)
        assert recv_exactly(sock, 8) == b"abcdefgh"

    def test_oversized_length_prefix_rejected_before_allocation(self):
        prefix = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(FrameTooLarge):
            recv_frame(FakeSocket(prefix))

    def test_max_bytes_is_tunable_per_receiver(self):
        frame = encode_frame({"blob": "x" * 100})
        with pytest.raises(FrameTooLarge):
            recv_frame(FakeSocket(frame), max_bytes=16)

    def test_encoding_an_oversized_message_fails_fast(self):
        huge = {"blob": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(FrameTooLarge):
            encode_frame(huge)

    def test_malformed_json_rejected(self):
        body = b"not json at all"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(MalformedFrame):
            recv_frame(FakeSocket(frame))

    def test_invalid_utf8_rejected(self):
        body = b"\xff\xfe\xfd"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(MalformedFrame):
            recv_frame(FakeSocket(frame))

    def test_non_object_json_rejected(self):
        body = b"[1, 2, 3]"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(MalformedFrame):
            recv_frame(FakeSocket(frame))


class TestPayloadCodec:
    def test_ndarray_round_trip_is_bit_exact(self):
        # Awkward values on purpose: denormals, negative zero, exact thirds.
        array = np.array(
            [[1.0 / 3.0, -0.0, 5e-324], [np.pi, 1e308, -1.5]], dtype=np.float64
        )
        restored = from_jsonable(to_jsonable(array))
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        assert restored.tobytes() == array.tobytes()

    def test_non_contiguous_ndarray_round_trips(self):
        array = np.arange(24, dtype=np.float32).reshape(4, 6)[::2, ::3]
        restored = from_jsonable(to_jsonable(array))
        assert np.array_equal(restored, array)

    def test_integer_dtypes_survive(self):
        array = np.array([1, -2, 3], dtype=np.int64)
        restored = from_jsonable(to_jsonable(array))
        assert restored.dtype == np.int64
        assert np.array_equal(restored, array)

    def test_dqn_config_round_trips_with_tupled_hidden_sizes(self):
        config = DQNConfig(observation_dim=7, num_actions=4, hidden_sizes=(32, 16))
        restored = from_jsonable(to_jsonable(config))
        assert restored == config
        assert isinstance(restored.hidden_sizes, tuple)

    def test_numpy_scalars_degrade_to_python(self):
        out = to_jsonable({"a": np.int64(3), "b": np.float64(1.5)})
        assert out == {"a": 3, "b": 1.5}
        assert type(out["a"]) is int
        assert type(out["b"]) is float

    def test_containers_recurse_and_tuples_become_lists(self):
        out = to_jsonable({"t": (1, 2), "nested": [{"x": (3,)}]})
        assert out == {"t": [1, 2], "nested": [{"x": [3]}]}

    def test_unknown_wire_kind_rejected(self):
        with pytest.raises(MalformedFrame):
            from_jsonable({"__wire__": "flux-capacitor"})

    def test_frames_carry_wrapped_payloads_end_to_end(self):
        weights = {"w0": np.linspace(-1, 1, 12, dtype=np.float32).reshape(3, 4)}
        sock = FakeSocket()
        send_frame(sock, {"type": "result", "payload": {"agent": weights}})
        received = recv_frame(FakeSocket(bytes(sock.sent), chunk=5))
        out = received["payload"]["agent"]["w0"]
        assert out.tobytes() == weights["w0"].tobytes()
