"""Tests for the scenario registry: coverage, serialization, determinism."""

import pytest

from repro.exp.scenarios import (
    FaultEvent,
    ScenarioSpec,
    TrafficPhase,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.noc.network import NoCSimulator


class TestRegistry:
    def test_seeded_with_required_scenario_families(self):
        names = scenario_names()
        assert len(names) >= 8
        for required in (
            "uniform",
            "transpose",
            "hotspot",
            "bursty",
            "bit-complement",
            "diurnal-ramp",
            "link-failure-storm",
            "mixed-application",
        ):
            assert required in names

    def test_unknown_scenario_reports_known_names(self):
        with pytest.raises(KeyError, match="uniform"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("uniform")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)
        # ... unless explicitly replacing.
        assert register_scenario(spec, replace_existing=True) is spec


class TestSpecValidation:
    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", description="", phases=())

    def test_rejects_unknown_dvfs_policy(self):
        with pytest.raises(ValueError, match="DVFS policy"):
            ScenarioSpec(
                name="x",
                description="",
                phases=(TrafficPhase(100, "uniform", 0.1),),
                dvfs_policy="oracle",
            )

    def test_rejects_unknown_routing_eagerly(self):
        with pytest.raises(KeyError):
            ScenarioSpec(
                name="x",
                description="",
                phases=(TrafficPhase(100, "uniform", 0.1),),
                routing="banana",
            )

    def test_rejects_unknown_injection_process(self):
        with pytest.raises(ValueError, match="injection process"):
            TrafficPhase(100, "uniform", 0.1, injection="poisson")

    def test_rejects_unknown_fault_action(self):
        with pytest.raises(ValueError, match="fault action"):
            FaultEvent(cycle=10, src=0, dst=1, action="wobble")


class TestSerialization:
    @pytest.mark.parametrize("name", scenario_names())
    def test_json_round_trip(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestEveryScenarioRuns:
    @pytest.mark.parametrize("name", scenario_names())
    def test_builds_and_runs_a_short_epoch(self, name):
        spec = get_scenario(name)
        simulator = NoCSimulator(spec.build_simulator_config(seed=0))
        simulator.traffic = spec.build_workload(simulator.topology, seed=0)
        assert simulator.traffic.total_cycles == spec.total_phase_cycles()

        result = run_scenario(name, seed=0, epochs=1, epoch_cycles=150)
        assert result.scenario == name
        assert result.cycles == 150
        assert result.packets_delivered >= 0
        assert result.energy_total_pj > 0.0

    @pytest.mark.parametrize("name", scenario_names())
    def test_deterministic_golden(self, name):
        """Two runs with the same seed are byte-identical (golden property the
        process-pool runner relies on)."""
        first = run_scenario(name, seed=7, epochs=2, epoch_cycles=250)
        second = run_scenario(name, seed=7, epochs=2, epoch_cycles=250)
        assert first.to_json().encode() == second.to_json().encode()
        # A different seed must actually change the workload.
        other = run_scenario(name, seed=8, epochs=2, epoch_cycles=250)
        assert other.to_json() != first.to_json()


class TestScenarioBehaviours:
    def test_fault_storm_fails_and_repairs_links(self):
        # 500 cycles cover the first fault (cycle 400) but no repairs.
        partial = run_scenario("link-failure-storm", seed=0, epochs=2, epoch_cycles=250)
        assert partial.failed_links == ((5, 6),)
        # The shortened run must flag the five fault events it never reached.
        assert partial.faults_skipped == 5
        assert partial.summary()["faults_skipped"] == 5
        # The full spec (4000 cycles) ends with every link repaired.
        full = run_scenario("link-failure-storm", seed=0)
        assert full.failed_links == ()
        assert full.faults_skipped == 0

    def test_threshold_policy_moves_dvfs_under_ramp(self):
        result = run_scenario("diurnal-ramp", seed=0)
        levels = {epoch["dvfs_level_index"] for epoch in result.epochs}
        assert len(levels) > 1

    def test_powersave_idle_exercises_the_fast_path(self):
        result = run_scenario("powersave-idle", seed=0, epochs=2, epoch_cycles=250)
        assert result.idle_cycles > 0
        slow = run_scenario(
            "powersave-idle", seed=0, epochs=2, epoch_cycles=250, idle_fast_path=False
        )
        assert slow.idle_cycles == 0
        assert slow.epochs == result.epochs


class TestEngineToggleAndPerfFields:
    @pytest.mark.parametrize("name", ("powersave-idle", "bursty", "link-failure-storm"))
    def test_naive_engine_toggle_is_equivalent(self, name):
        fast = run_scenario(name, seed=5, epochs=2, epoch_cycles=250)
        naive = run_scenario(
            name,
            seed=5,
            epochs=2,
            epoch_cycles=250,
            idle_fast_path=False,
            activity_tracking=False,
        )
        assert fast.epochs == naive.epochs
        assert fast.failed_links == naive.failed_links
        assert naive.idle_cycles == 0

    def test_results_carry_perf_fields(self):
        result = run_scenario("uniform", seed=0, epochs=1, epoch_cycles=200)
        assert result.wall_time_s > 0.0
        assert result.cycles_per_second > 0.0
        # Perf samples are wall-clock noise: excluded from equality and from
        # the serialized form the determinism golden tests compare.
        from dataclasses import replace as dc_replace

        altered = dc_replace(result, wall_time_s=123.0, cycles_per_second=1.0)
        assert altered == result
        assert "wall_time_s" not in result.to_json()
        assert "cycles_per_second" not in result.to_json()
