"""Tests for the process-pool runner: ordering, determinism, picklability."""

import pickle

import pytest

from repro.analysis.sweep import SweepTrial, load_latency_sweep, measure_sweep_point
from repro.exp.runner import (
    TrialPool,
    default_chunk_size,
    run_scenarios,
    run_trials,
    trial_seed,
)
from repro.noc import SimulatorConfig

CONFIG = SimulatorConfig(width=4)
SWEEP_KWARGS = dict(warmup_cycles=150, measure_cycles=300, seed=1)


class TestRunTrials:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_trials(measure_sweep_point, [], jobs=0)

    def test_empty_trial_list(self):
        assert run_trials(measure_sweep_point, [], jobs=4) == []

    def test_serial_path_preserves_order(self):
        trials = [
            SweepTrial(CONFIG, "uniform", rate, 50, 100, seed=1, dvfs_level=0)
            for rate in (0.05, 0.10, 0.15)
        ]
        points = run_trials(measure_sweep_point, trials, jobs=1)
        assert [point.injection_rate for point in points] == [0.05, 0.10, 0.15]

    def test_trial_seed_is_stable_and_spread(self):
        assert trial_seed(3, 5) == trial_seed(3, 5)
        seeds = {trial_seed(0, index) for index in range(100)}
        assert len(seeds) == 100
        with pytest.raises(ValueError):
            trial_seed(0, -1)

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(6, 4) == 1
        assert default_chunk_size(64, 4) == 4


class TestTrialPool:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            TrialPool(0)

    def test_serial_pool_runs_in_process(self):
        with TrialPool(1) as pool:
            trials = [
                SweepTrial(CONFIG, "uniform", rate, 50, 100, seed=1, dvfs_level=0)
                for rate in (0.05, 0.10)
            ]
            points = pool.run(measure_sweep_point, trials)
        assert [point.injection_rate for point in points] == [0.05, 0.10]

    def test_close_is_idempotent(self):
        pool = TrialPool(1)
        pool.run(measure_sweep_point, [])
        pool.close()
        pool.close()

    @pytest.mark.slow
    def test_pool_reuse_across_rounds_matches_serial(self):
        trials = [
            SweepTrial(CONFIG, "uniform", rate, 50, 100, seed=1, dvfs_level=0)
            for rate in (0.05, 0.10, 0.15, 0.20)
        ]
        serial = [measure_sweep_point(trial) for trial in trials]
        with TrialPool(2) as pool:
            first_round = pool.run(measure_sweep_point, trials[:2])
            second_round = pool.run(measure_sweep_point, trials[2:])
        assert first_round + second_round == serial


class TestPicklability:
    def test_sweep_trials_and_results_round_trip(self):
        trial = SweepTrial(
            CONFIG, "hotspot", 0.1, 50, 100, seed=2, dvfs_level=1,
            pattern_kwargs={"hotspot_fraction": 0.3},
        )
        assert pickle.loads(pickle.dumps(trial)) == trial
        point = measure_sweep_point(trial)
        assert pickle.loads(pickle.dumps(point)) == point

    def test_scenario_results_round_trip(self):
        [result] = run_scenarios(["uniform"], epochs=1, epoch_cycles=100)
        assert pickle.loads(pickle.dumps(result)) == result


@pytest.mark.slow
class TestParallelEquivalence:
    """jobs=1 and jobs=4 must produce identical result sequences."""

    def test_load_latency_sweep_parallel_matches_serial(self):
        rates = [0.05, 0.15, 0.30, 0.50]
        serial = load_latency_sweep(CONFIG, rates, pattern="uniform", **SWEEP_KWARGS)
        parallel = load_latency_sweep(
            CONFIG, rates, pattern="uniform", jobs=4, **SWEEP_KWARGS
        )
        assert serial == parallel
        assert [point.injection_rate for point in parallel] == rates

    def test_scenario_fan_out_matches_serial(self):
        names = ["uniform", "hotspot", "transpose"]
        serial = run_scenarios(names, jobs=1, epochs=1, epoch_cycles=150)
        parallel = run_scenarios(names, jobs=4, epochs=1, epoch_cycles=150)
        assert [result.to_json() for result in serial] == [
            result.to_json() for result in parallel
        ]
        assert [result.scenario for result in parallel] == names

    def test_repeats_use_derived_seeds(self):
        results = run_scenarios(
            ["uniform"], jobs=2, repeats=2, seed=5, epochs=1, epoch_cycles=150
        )
        assert [result.seed for result in results] == [trial_seed(5, 0), trial_seed(5, 1)]
        assert results[0].epochs != results[1].epochs
