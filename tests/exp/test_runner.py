"""Tests for the process-pool runner: ordering, determinism, picklability."""

import pickle

import pytest

from repro.analysis.sweep import SweepTrial, load_latency_sweep, measure_sweep_point
from repro.exp.chaos import ChaosPolicy, ChaosRule
from repro.exp.runner import (
    SupervisedTrialPool,
    SupervisionPolicy,
    TrialExecutionError,
    TrialFailure,
    TrialPool,
    default_chunk_size,
    run_scenarios,
    run_trials,
    trial_seed,
)
from repro.noc import SimulatorConfig

CONFIG = SimulatorConfig(width=4)
SWEEP_KWARGS = dict(warmup_cycles=150, measure_cycles=300, seed=1)


class TestRunTrials:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_trials(measure_sweep_point, [], jobs=0)

    def test_empty_trial_list(self):
        assert run_trials(measure_sweep_point, [], jobs=4) == []

    def test_serial_path_preserves_order(self):
        trials = [
            SweepTrial(CONFIG, "uniform", rate, 50, 100, seed=1, dvfs_level=0)
            for rate in (0.05, 0.10, 0.15)
        ]
        points = run_trials(measure_sweep_point, trials, jobs=1)
        assert [point.injection_rate for point in points] == [0.05, 0.10, 0.15]

    def test_trial_seed_is_stable_and_spread(self):
        assert trial_seed(3, 5) == trial_seed(3, 5)
        seeds = {trial_seed(0, index) for index in range(100)}
        assert len(seeds) == 100
        with pytest.raises(ValueError):
            trial_seed(0, -1)

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(6, 4) == 1
        assert default_chunk_size(64, 4) == 4

    def test_default_chunk_size_with_more_jobs_than_trials(self):
        # Oversubscribed pools must still chunk at >= 1, never 0.
        assert default_chunk_size(2, 8) == 1
        assert default_chunk_size(1, 16) == 1

    def test_default_chunk_size_with_no_trials(self):
        assert default_chunk_size(0, 1) == 1
        assert default_chunk_size(-3, 4) == 1

    def test_telemetry_streams_across_parallel_jobs(self):
        # Worker rows cross process boundaries through the manager-queue
        # tap; the parent's drainer feeds this in-process sink.  (The
        # sequential/parallel row-equivalence contract lives in
        # tests/exp/test_approx_diff.py.)
        rows = []

        class Sink:
            def emit(self, row):
                rows.append(row)

        [result] = run_scenarios(
            ["uniform"], jobs=2, epochs=1, epoch_cycles=100, telemetry=Sink()
        )
        assert result.scenario == "uniform"
        assert rows and all(row["scenario"] == "uniform" for row in rows)

    def test_telemetry_streams_in_process(self):
        rows = []

        class Sink:
            def emit(self, row):
                rows.append(row)

        [result] = run_scenarios(
            ["uniform"], jobs=1, epochs=1, epoch_cycles=100, telemetry=Sink()
        )
        assert result.scenario == "uniform"
        assert rows and all(row["scenario"] == "uniform" for row in rows)


class TestTrialPool:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            TrialPool(0)

    def test_serial_pool_runs_in_process(self):
        with TrialPool(1) as pool:
            trials = [
                SweepTrial(CONFIG, "uniform", rate, 50, 100, seed=1, dvfs_level=0)
                for rate in (0.05, 0.10)
            ]
            points = pool.run(measure_sweep_point, trials)
        assert [point.injection_rate for point in points] == [0.05, 0.10]

    def test_close_is_idempotent(self):
        pool = TrialPool(1)
        pool.run(measure_sweep_point, [])
        pool.close()
        pool.close()

    @pytest.mark.slow
    def test_pool_reuse_across_rounds_matches_serial(self):
        trials = [
            SweepTrial(CONFIG, "uniform", rate, 50, 100, seed=1, dvfs_level=0)
            for rate in (0.05, 0.10, 0.15, 0.20)
        ]
        serial = [measure_sweep_point(trial) for trial in trials]
        with TrialPool(2) as pool:
            first_round = pool.run(measure_sweep_point, trials[:2])
            second_round = pool.run(measure_sweep_point, trials[2:])
        assert first_round + second_round == serial


class TestPicklability:
    def test_sweep_trials_and_results_round_trip(self):
        trial = SweepTrial(
            CONFIG, "hotspot", 0.1, 50, 100, seed=2, dvfs_level=1,
            pattern_kwargs={"hotspot_fraction": 0.3},
        )
        assert pickle.loads(pickle.dumps(trial)) == trial
        point = measure_sweep_point(trial)
        assert pickle.loads(pickle.dumps(point)) == point

    def test_scenario_results_round_trip(self):
        [result] = run_scenarios(["uniform"], epochs=1, epoch_cycles=100)
        assert pickle.loads(pickle.dumps(result)) == result


@pytest.mark.slow
class TestParallelEquivalence:
    """jobs=1 and jobs=4 must produce identical result sequences."""

    def test_load_latency_sweep_parallel_matches_serial(self):
        rates = [0.05, 0.15, 0.30, 0.50]
        serial = load_latency_sweep(CONFIG, rates, pattern="uniform", **SWEEP_KWARGS)
        parallel = load_latency_sweep(
            CONFIG, rates, pattern="uniform", jobs=4, **SWEEP_KWARGS
        )
        assert serial == parallel
        assert [point.injection_rate for point in parallel] == rates

    def test_scenario_fan_out_matches_serial(self):
        names = ["uniform", "hotspot", "transpose"]
        serial = run_scenarios(names, jobs=1, epochs=1, epoch_cycles=150)
        parallel = run_scenarios(names, jobs=4, epochs=1, epoch_cycles=150)
        assert [result.to_json() for result in serial] == [
            result.to_json() for result in parallel
        ]
        assert [result.scenario for result in parallel] == names

    def test_repeats_use_derived_seeds(self):
        results = run_scenarios(
            ["uniform"], jobs=2, repeats=2, seed=5, epochs=1, epoch_cycles=150
        )
        assert [result.seed for result in results] == [trial_seed(5, 0), trial_seed(5, 1)]
        assert results[0].epochs != results[1].epochs


# Module-level so they pickle into pool workers.
def _double(x):
    return x * 2


def _fail_below(x):
    if x < 0:
        raise ValueError(f"bad trial {x}")
    return x * 2


class TestSupervisionPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="timeout_s"):
            SupervisionPolicy(timeout_s=0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            SupervisionPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="max_rebuilds"):
            SupervisionPolicy(max_rebuilds=-1)

    def test_backoff_grows_exponentially(self):
        policy = SupervisionPolicy(backoff_s=0.1, backoff_factor=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)


class TestSupervisedTrialPool:
    def test_serial_happy_path_matches_plain_loop(self):
        with SupervisedTrialPool(1) as pool:
            assert pool.run(_double, [1, 2, 3]) == [2, 4, 6]
            assert pool.last_attempts == [1, 1, 1]

    def test_serial_exceptions_propagate_raw_without_chaos(self):
        # jobs=1 is the reference path: no retry wrapping, today's semantics.
        with SupervisedTrialPool(1) as pool:
            with pytest.raises(ValueError, match="bad trial"):
                pool.run(_fail_below, [1, -1, 2])

    def test_labels_must_match_trials(self):
        with SupervisedTrialPool(1) as pool:
            with pytest.raises(ValueError, match="labels"):
                pool.run(_double, [1, 2], labels=["only-one"])

    def test_on_failure_mode_validated(self):
        with SupervisedTrialPool(1) as pool:
            with pytest.raises(ValueError, match="on_failure"):
                pool.run(_double, [1], on_failure="ignore")

    def test_on_result_fires_with_attempt_counts(self):
        seen = []
        with SupervisedTrialPool(1) as pool:
            pool.run(
                _double,
                [5, 6],
                on_result=lambda index, result, attempts: seen.append(
                    (index, result, attempts)
                ),
            )
        assert seen == [(0, 10, 1), (1, 12, 1)]

    def test_poison_trial_is_quarantined_after_siblings(self):
        chaos = ChaosPolicy(
            rules=tuple(ChaosRule("raise", 1, attempt) for attempt in range(3))
        )
        with SupervisedTrialPool(
            1, policy=SupervisionPolicy(max_retries=2, backoff_s=0.0), chaos=chaos
        ) as pool:
            with pytest.raises(TrialExecutionError) as excinfo:
                pool.run(_double, [1, 2, 3], labels=["a", "b", "c"])
        error = excinfo.value
        assert [failure.label for failure in error.failures] == ["b"]
        assert error.failures[0].kind == "exception"
        assert error.failures[0].attempts == 3
        # Every sibling's result survives alongside the failure report.
        assert error.results == [2, None, 6]

    def test_on_failure_return_leaves_failures_in_slots(self):
        chaos = ChaosPolicy(rules=(ChaosRule("raise", 0),))
        with SupervisedTrialPool(
            1, policy=SupervisionPolicy(max_retries=0, backoff_s=0.0), chaos=chaos
        ) as pool:
            results = pool.run(_double, [1, 2], on_failure="return")
        assert isinstance(results[0], TrialFailure)
        assert results[1] == 4

    @pytest.mark.slow
    def test_lost_worker_rebuilds_pool_and_recovers(self):
        chaos = ChaosPolicy(rules=(ChaosRule("kill", 1),))
        with SupervisedTrialPool(
            2, policy=SupervisionPolicy(backoff_s=0.01), chaos=chaos
        ) as pool:
            results = pool.run(_double, list(range(6)))
        assert results == [x * 2 for x in range(6)]
        assert pool.rebuilds >= 1
        assert pool.last_attempts[1] >= 2

    @pytest.mark.slow
    def test_stalled_trial_times_out_and_retries(self):
        chaos = ChaosPolicy(rules=(ChaosRule("stall", 2, stall_s=60.0),))
        with SupervisedTrialPool(
            2,
            policy=SupervisionPolicy(timeout_s=2.0, backoff_s=0.01),
            chaos=chaos,
        ) as pool:
            results = pool.run(_double, list(range(4)))
        assert results == [0, 2, 4, 6]
        assert pool.last_attempts[2] >= 2

    @pytest.mark.slow
    def test_irrecoverable_pool_degrades_to_serial(self):
        # Kill trial 0's first four attempts: three rebuilds exhaust
        # max_rebuilds=2, the pool falls back in-process (kill degrades to
        # raise there) and the fifth attempt finally succeeds.
        chaos = ChaosPolicy(
            rules=tuple(ChaosRule("kill", 0, attempt) for attempt in range(4))
        )
        with SupervisedTrialPool(
            2,
            policy=SupervisionPolicy(max_retries=8, backoff_s=0.01, max_rebuilds=2),
            chaos=chaos,
        ) as pool:
            results = pool.run(_double, list(range(4)))
        assert results == [0, 2, 4, 6]
        assert pool.rebuilds == 3

    @pytest.mark.slow
    def test_parallel_chaos_matches_clean_run(self):
        trials = [
            SweepTrial(CONFIG, "uniform", rate, 50, 100, seed=1, dvfs_level=0)
            for rate in (0.05, 0.10, 0.15)
        ]
        clean = [measure_sweep_point(trial) for trial in trials]
        chaos = ChaosPolicy(rules=(ChaosRule("kill", 0), ChaosRule("raise", 2),))
        with SupervisedTrialPool(
            2, policy=SupervisionPolicy(backoff_s=0.01), chaos=chaos
        ) as pool:
            assert pool.run(measure_sweep_point, trials) == clean


class TestPoolShutdownSemantics:
    def test_close_cancels_queued_futures(self):
        pool = TrialPool(2)
        pool.run(_double, [1, 2, 3])
        captured = {}
        inner = pool._pool
        original = inner.shutdown

        def recording_shutdown(*args, **kwargs):
            captured.update(kwargs)
            return original(*args, **kwargs)

        inner.shutdown = recording_shutdown
        pool.close()
        # An exception mid-suite must not block close() on queued trials.
        assert captured.get("cancel_futures") is True
