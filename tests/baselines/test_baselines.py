"""Unit tests for the baseline controller policies."""

import numpy as np
import pytest

from repro.baselines import (
    RandomPolicy,
    StaticPolicy,
    ThresholdDvfsPolicy,
    static_max_performance,
    static_min_energy,
)
from tests.core.test_features import make_telemetry

OBS = np.zeros(11)


class TestStaticPolicy:
    def test_always_returns_the_same_index(self):
        policy = StaticPolicy(2)
        assert [policy.select_action(OBS, make_telemetry()) for _ in range(5)] == [2] * 5

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            StaticPolicy(-1)

    def test_named_constructors(self):
        assert static_max_performance().action_index == 0
        assert static_max_performance().name == "static-max"
        assert static_min_energy(4).action_index == 3
        assert static_min_energy(4).name == "static-min"
        with pytest.raises(ValueError):
            static_min_energy(0)

    def test_default_name_includes_index(self):
        assert StaticPolicy(1).name == "static[1]"


class TestThresholdDvfsPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdDvfsPolicy(1)
        with pytest.raises(ValueError):
            ThresholdDvfsPolicy(4, upper_threshold=0.1, lower_threshold=0.2)
        with pytest.raises(ValueError):
            ThresholdDvfsPolicy(4, backlog_threshold=-1)
        with pytest.raises(ValueError):
            ThresholdDvfsPolicy(4, initial_level=7)

    def test_steps_down_when_idle(self):
        policy = ThresholdDvfsPolicy(4, initial_level=0)
        idle = make_telemetry(link_utilization=0.01, average_source_queue_flits=0.0)
        levels = [policy.select_action(OBS, idle) for _ in range(5)]
        assert levels == [1, 2, 3, 3, 3]

    def test_steps_up_when_congested(self):
        policy = ThresholdDvfsPolicy(4, initial_level=3)
        busy = make_telemetry(link_utilization=0.5, average_source_queue_flits=1.0)
        levels = [policy.select_action(OBS, busy) for _ in range(4)]
        assert levels == [2, 1, 0, 0]

    def test_panic_mode_jumps_to_fastest(self):
        policy = ThresholdDvfsPolicy(4, initial_level=3, backlog_threshold=2.0)
        swamped = make_telemetry(link_utilization=0.2, average_source_queue_flits=50.0)
        assert policy.select_action(OBS, swamped) == 0

    def test_holds_level_in_hysteresis_band(self):
        policy = ThresholdDvfsPolicy(
            4, initial_level=1, upper_threshold=0.4, lower_threshold=0.1
        )
        moderate = make_telemetry(link_utilization=0.25, average_source_queue_flits=1.5)
        assert policy.select_action(OBS, moderate) == 1
        assert policy.select_action(OBS, moderate) == 1

    def test_backlog_alone_triggers_speedup(self):
        policy = ThresholdDvfsPolicy(4, initial_level=2, backlog_threshold=2.0)
        backlogged = make_telemetry(link_utilization=0.05, average_source_queue_flits=3.0)
        assert policy.select_action(OBS, backlogged) == 1


class TestRandomPolicy:
    def test_rejects_empty_action_space(self):
        with pytest.raises(ValueError):
            RandomPolicy(0)

    def test_actions_are_in_range_and_varied(self):
        policy = RandomPolicy(4, seed=0)
        actions = [policy.select_action(OBS, make_telemetry()) for _ in range(100)]
        assert set(actions).issubset({0, 1, 2, 3})
        assert len(set(actions)) == 4

    def test_seeded_reproducibility(self):
        first = RandomPolicy(4, seed=3)
        second = RandomPolicy(4, seed=3)
        telemetry = make_telemetry()
        assert [first.select_action(OBS, telemetry) for _ in range(20)] == [
            second.select_action(OBS, telemetry) for _ in range(20)
        ]
