"""Unit and property tests for the routing algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import (
    DEADLOCK_FREE_ALGORITHMS,
    ROUTING_ALGORITHMS,
    get_routing_algorithm,
    north_last_routing,
    odd_even_routing,
    west_first_routing,
    xy_routing,
    yx_routing,
)
from repro.noc.topology import Direction, Mesh

MESH = Mesh(4, 4)
MESH8 = Mesh(8, 8)


def step(mesh: Mesh, node: int, direction: Direction) -> int:
    nxt = mesh.neighbor(node, direction)
    assert nxt is not None, "routing suggested an off-chip direction"
    return nxt


class TestRegistry:
    def test_known_algorithms(self):
        assert set(DEADLOCK_FREE_ALGORITHMS).issubset(ROUTING_ALGORITHMS)
        assert "xy" in ROUTING_ALGORITHMS

    def test_lookup_by_name(self):
        assert get_routing_algorithm("xy") is xy_routing

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="unknown routing algorithm"):
            get_routing_algorithm("zigzag")

    def test_algorithms_expose_names(self):
        for name, algorithm in ROUTING_ALGORITHMS.items():
            assert algorithm.name == name


class TestXY:
    def test_resolves_x_before_y(self):
        src, dst = MESH.node_at(0, 0), MESH.node_at(2, 3)
        assert xy_routing(MESH, src, src, dst) == [Direction.EAST]

    def test_resolves_y_when_x_aligned(self):
        src, dst = MESH.node_at(2, 0), MESH.node_at(2, 3)
        assert xy_routing(MESH, src, src, dst) == [Direction.NORTH]

    def test_local_at_destination(self):
        node = MESH.node_at(1, 1)
        assert xy_routing(MESH, node, node, node) == [Direction.LOCAL]

    def test_westbound_and_southbound(self):
        src, dst = MESH.node_at(3, 3), MESH.node_at(0, 0)
        assert xy_routing(MESH, src, src, dst) == [Direction.WEST]
        aligned = MESH.node_at(0, 3)
        assert xy_routing(MESH, aligned, src, dst) == [Direction.SOUTH]

    def test_full_path_matches_hop_distance(self):
        src, dst = MESH.node_at(0, 3), MESH.node_at(3, 0)
        node, hops = src, 0
        while node != dst:
            (direction,) = xy_routing(MESH, node, src, dst)
            node = step(MESH, node, direction)
            hops += 1
        assert hops == MESH.hop_distance(src, dst)


class TestYX:
    def test_resolves_y_before_x(self):
        src, dst = MESH.node_at(0, 0), MESH.node_at(2, 3)
        assert yx_routing(MESH, src, src, dst) == [Direction.NORTH]

    def test_paths_differ_from_xy_but_same_length(self):
        src, dst = MESH.node_at(0, 0), MESH.node_at(3, 3)
        xy_first = xy_routing(MESH, src, src, dst)
        yx_first = yx_routing(MESH, src, src, dst)
        assert xy_first != yx_first


class TestWestFirst:
    def test_westbound_is_deterministic(self):
        src, dst = MESH.node_at(3, 0), MESH.node_at(0, 2)
        assert west_first_routing(MESH, src, src, dst) == [Direction.WEST]

    def test_eastbound_is_adaptive(self):
        src, dst = MESH.node_at(0, 0), MESH.node_at(2, 2)
        candidates = west_first_routing(MESH, src, src, dst)
        assert set(candidates) == {Direction.EAST, Direction.NORTH}

    def test_never_turns_into_west(self):
        # Any candidate set either contains WEST alone or no WEST at all.
        for src in MESH.nodes():
            for dst in MESH.nodes():
                candidates = west_first_routing(MESH, src, src, dst)
                if Direction.WEST in candidates:
                    assert candidates == [Direction.WEST]


class TestNorthLast:
    def test_north_only_when_aligned(self):
        src, dst = MESH.node_at(1, 0), MESH.node_at(1, 3)
        assert north_last_routing(MESH, src, src, dst) == [Direction.NORTH]

    def test_defers_north_until_x_resolved(self):
        src, dst = MESH.node_at(0, 0), MESH.node_at(2, 2)
        assert north_last_routing(MESH, src, src, dst) == [Direction.EAST]

    def test_southbound_is_adaptive(self):
        src, dst = MESH.node_at(0, 3), MESH.node_at(2, 0)
        candidates = north_last_routing(MESH, src, src, dst)
        assert set(candidates) == {Direction.EAST, Direction.SOUTH}


class TestOddEven:
    def test_no_east_north_or_east_south_turn_in_even_columns(self):
        # In even columns (other than the source column) a packet travelling
        # east must not be offered a vertical turn unless allowed by the rule.
        src = MESH.node_at(0, 0)
        dst = MESH.node_at(3, 2)
        current = MESH.node_at(2, 0)  # even column, not the source column
        candidates = odd_even_routing(MESH, current, src, dst)
        assert Direction.EAST in candidates

    def test_destination_reachable_from_everywhere(self):
        for src in MESH.nodes():
            for dst in MESH.nodes():
                if src == dst:
                    continue
                node = src
                for _ in range(MESH.diameter() + 1):
                    candidates = odd_even_routing(MESH, node, src, dst)
                    assert candidates, "odd-even returned no candidates"
                    if candidates == [Direction.LOCAL]:
                        break
                    node = step(MESH, node, candidates[0])
                assert odd_even_routing(MESH, node, src, dst) == [Direction.LOCAL]


@pytest.mark.parametrize("name", sorted(ROUTING_ALGORITHMS))
class TestAllAlgorithmsShareInvariants:
    def test_local_only_at_destination(self, name):
        algorithm = ROUTING_ALGORITHMS[name]
        for src in MESH.nodes():
            for dst in MESH.nodes():
                candidates = algorithm(MESH, src, src, dst)
                if src == dst:
                    assert candidates == [Direction.LOCAL]
                else:
                    assert Direction.LOCAL not in candidates

    def test_candidates_are_minimal_and_productive(self, name):
        algorithm = ROUTING_ALGORITHMS[name]
        for src in MESH.nodes():
            for dst in MESH.nodes():
                if src == dst:
                    continue
                for direction in algorithm(MESH, src, src, dst):
                    nxt = MESH.neighbor(src, direction)
                    assert nxt is not None
                    assert MESH.hop_distance(nxt, dst) == MESH.hop_distance(src, dst) - 1


@settings(max_examples=200, deadline=None)
@given(
    name=st.sampled_from(sorted(ROUTING_ALGORITHMS)),
    src=st.integers(min_value=0, max_value=63),
    dst=st.integers(min_value=0, max_value=63),
)
def test_any_algorithm_reaches_destination_on_8x8(name, src, dst):
    """Following any candidate greedily always reaches the destination in
    exactly hop_distance steps (minimality + progress), on an 8x8 mesh."""
    algorithm = ROUTING_ALGORITHMS[name]
    node = src
    for _ in range(MESH8.hop_distance(src, dst)):
        candidates = algorithm(MESH8, node, src, dst)
        assert candidates and candidates != [Direction.LOCAL]
        node = step(MESH8, node, candidates[-1])
    assert node == dst
    assert algorithm(MESH8, node, src, dst) == [Direction.LOCAL]
