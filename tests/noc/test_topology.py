"""Unit tests for mesh and torus topologies."""

import networkx as nx
import pytest

from repro.noc.topology import CARDINAL_DIRECTIONS, Direction, Mesh, Torus


class TestDirection:
    def test_opposites_are_symmetric(self):
        for direction in Direction:
            assert direction.opposite.opposite is direction

    def test_local_is_its_own_opposite(self):
        assert Direction.LOCAL.opposite is Direction.LOCAL

    def test_cardinal_directions_exclude_local(self):
        assert Direction.LOCAL not in CARDINAL_DIRECTIONS
        assert len(CARDINAL_DIRECTIONS) == 4


class TestMeshGeometry:
    def test_node_count(self):
        assert Mesh(4, 4).num_nodes == 16
        assert Mesh(3, 5).num_nodes == 15

    def test_square_by_default(self):
        mesh = Mesh(5)
        assert mesh.width == 5 and mesh.height == 5

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(1, 4)
        with pytest.raises(ValueError):
            Mesh(4, 0)

    def test_coordinate_roundtrip(self):
        mesh = Mesh(4, 3)
        for node in mesh.nodes():
            coord = mesh.coordinates(node)
            assert mesh.node_at(coord.x, coord.y) == node

    def test_coordinates_out_of_range(self):
        mesh = Mesh(4, 4)
        with pytest.raises(ValueError):
            mesh.coordinates(16)
        with pytest.raises(ValueError):
            mesh.node_at(4, 0)

    def test_corner_coordinates(self):
        mesh = Mesh(4, 4)
        assert mesh.coordinates(0) == mesh.coordinates(0)
        assert (mesh.coordinates(0).x, mesh.coordinates(0).y) == (0, 0)
        assert (mesh.coordinates(15).x, mesh.coordinates(15).y) == (3, 3)


class TestMeshNeighbors:
    def test_interior_node_has_four_neighbors(self):
        mesh = Mesh(4, 4)
        node = mesh.node_at(1, 1)
        assert len(mesh.neighbors(node)) == 4

    def test_corner_node_has_two_neighbors(self):
        mesh = Mesh(4, 4)
        assert len(mesh.neighbors(0)) == 2
        assert len(mesh.neighbors(15)) == 2

    def test_edge_node_has_three_neighbors(self):
        mesh = Mesh(4, 4)
        edge = mesh.node_at(1, 0)
        assert len(mesh.neighbors(edge)) == 3

    def test_neighbor_directions_are_consistent(self):
        mesh = Mesh(4, 4)
        node = mesh.node_at(2, 2)
        assert mesh.neighbor(node, Direction.EAST) == mesh.node_at(3, 2)
        assert mesh.neighbor(node, Direction.WEST) == mesh.node_at(1, 2)
        assert mesh.neighbor(node, Direction.NORTH) == mesh.node_at(2, 3)
        assert mesh.neighbor(node, Direction.SOUTH) == mesh.node_at(2, 1)

    def test_border_ports_face_off_chip(self):
        mesh = Mesh(4, 4)
        assert mesh.neighbor(0, Direction.WEST) is None
        assert mesh.neighbor(0, Direction.SOUTH) is None
        assert mesh.neighbor(15, Direction.EAST) is None
        assert mesh.neighbor(15, Direction.NORTH) is None

    def test_local_neighbor_is_self(self):
        mesh = Mesh(3, 3)
        for node in mesh.nodes():
            assert mesh.neighbor(node, Direction.LOCAL) == node

    def test_direction_towards_adjacent(self):
        mesh = Mesh(4, 4)
        assert mesh.direction_towards(0, 1) is Direction.EAST
        assert mesh.direction_towards(1, 0) is Direction.WEST
        assert mesh.direction_towards(0, 4) is Direction.NORTH

    def test_direction_towards_non_adjacent_raises(self):
        mesh = Mesh(4, 4)
        with pytest.raises(ValueError):
            mesh.direction_towards(0, 5)

    def test_neighbor_relation_is_symmetric(self):
        mesh = Mesh(5, 3)
        for node in mesh.nodes():
            for direction, other in mesh.neighbors(node).items():
                assert mesh.neighbor(other, direction.opposite) == node


class TestMeshDistances:
    def test_hop_distance_manhattan(self):
        mesh = Mesh(4, 4)
        assert mesh.hop_distance(0, 15) == 6
        assert mesh.hop_distance(0, 3) == 3
        assert mesh.hop_distance(5, 5) == 0

    def test_diameter(self):
        assert Mesh(4, 4).diameter() == 6
        assert Mesh(8, 8).diameter() == 14

    def test_average_hop_distance_matches_graph(self):
        mesh = Mesh(3, 3)
        graph = mesh.to_graph()
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        total = sum(
            lengths[a][b] for a in mesh.nodes() for b in mesh.nodes() if a != b
        )
        expected = total / (mesh.num_nodes * (mesh.num_nodes - 1))
        assert mesh.average_hop_distance() == pytest.approx(expected)


class TestMeshGraph:
    def test_graph_is_connected_with_expected_edges(self):
        mesh = Mesh(4, 4)
        graph = mesh.to_graph()
        assert nx.is_connected(graph)
        # 2 * w * h - w - h bidirectional edges in a mesh
        assert graph.number_of_edges() == 2 * 4 * 4 - 4 - 4

    def test_links_are_directed_pairs(self):
        mesh = Mesh(3, 3)
        links = mesh.links()
        assert len(links) == 2 * (2 * 3 * 3 - 3 - 3)
        assert all(mesh.neighbor(src, direction) == dst for src, direction, dst in links)


class TestTorus:
    def test_wraparound_neighbors(self):
        torus = Torus(4, 4)
        west_of_origin = torus.neighbor(0, Direction.WEST)
        assert west_of_origin == torus.node_at(3, 0)
        south_of_origin = torus.neighbor(0, Direction.SOUTH)
        assert south_of_origin == torus.node_at(0, 3)

    def test_every_node_has_four_neighbors(self):
        torus = Torus(4, 4)
        for node in torus.nodes():
            assert len(torus.neighbors(node)) == 4

    def test_hop_distance_uses_wraparound(self):
        torus = Torus(4, 4)
        assert torus.hop_distance(0, 3) == 1
        assert torus.hop_distance(0, 15) == 2

    def test_diameter_smaller_than_mesh(self):
        assert Torus(4, 4).diameter() < Mesh(4, 4).diameter()

    def test_graph_is_regular(self):
        torus = Torus(4, 4)
        graph = torus.to_graph()
        assert all(degree == 4 for _, degree in graph.degree())
