"""Unit tests for the VC wormhole router in isolation."""

import pytest

from repro.noc.dvfs import DVFS_LEVELS_DEFAULT
from repro.noc.packet import Packet
from repro.noc.power import PowerModel
from repro.noc.router import Router, VCState
from repro.noc.routing import SelectionPolicy, get_routing_algorithm
from repro.noc.topology import Direction, Mesh

MESH = Mesh(4, 4)
FULL_SPEED = DVFS_LEVELS_DEFAULT[0]
QUARTER_SPEED = DVFS_LEVELS_DEFAULT[-1]


def make_router(node: int = 5, **kwargs) -> Router:
    defaults = dict(
        num_vcs=2,
        buffer_depth=4,
        routing=get_routing_algorithm("xy"),
        selection=SelectionPolicy.FIRST,
        operating_point=FULL_SPEED,
    )
    defaults.update(kwargs)
    return Router(node, MESH, **defaults)


def load_packet(router: Router, packet: Packet, port: Direction = Direction.LOCAL, vc: int = 0):
    for flit in packet.flits():
        router.receive_flit(port, vc, flit)


class TestConstruction:
    def test_interior_router_has_five_ports(self):
        router = make_router(node=MESH.node_at(1, 1))
        assert len(router.input_ports) == 5
        assert Direction.LOCAL in router.input_ports

    def test_corner_router_has_three_ports(self):
        router = make_router(node=0)
        assert len(router.input_ports) == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_router(num_vcs=0)
        with pytest.raises(ValueError):
            make_router(buffer_depth=0)


class TestIngress:
    def test_receive_respects_buffer_depth(self):
        router = make_router(buffer_depth=2)
        packet = Packet(src=5, dst=6, size=2, creation_cycle=0)
        load_packet(router, packet)
        assert router.buffered_flits == 2
        assert not router.can_accept(Direction.LOCAL, 0)
        extra = Packet(src=5, dst=6, size=1, creation_cycle=0)
        with pytest.raises(RuntimeError, match="overflow"):
            router.receive_flit(Direction.LOCAL, 0, extra.flits()[0])

    def test_free_input_vc_skips_busy_vcs(self):
        router = make_router()
        assert router.free_input_vc(Direction.LOCAL) == 0
        packet = Packet(src=5, dst=6, size=1, creation_cycle=0)
        router.receive_flit(Direction.LOCAL, 0, packet.flits()[0])
        assert router.free_input_vc(Direction.LOCAL) == 1

    def test_free_input_vc_respects_enabled_count(self):
        router = make_router(num_vcs=2)
        router.set_enabled_vcs(1)
        packet = Packet(src=5, dst=6, size=1, creation_cycle=0)
        router.receive_flit(Direction.LOCAL, 0, packet.flits()[0])
        assert router.free_input_vc(Direction.LOCAL) is None


class TestPipeline:
    def test_single_packet_traverses_towards_destination(self):
        router = make_router(node=5)
        packet = Packet(src=5, dst=7, size=1, creation_cycle=0)  # two hops east
        load_packet(router, packet)
        movements = router.step(0, PowerModel())
        assert len(movements) == 1
        move = movements[0]
        assert move.out_port is Direction.EAST
        assert move.dst_node == 6
        assert router.buffered_flits == 0

    def test_packet_for_local_node_is_ejected(self):
        router = make_router(node=5)
        packet = Packet(src=1, dst=5, size=1, creation_cycle=0)
        load_packet(router, packet, port=Direction.SOUTH)
        movements = router.step(0, PowerModel())
        assert len(movements) == 1
        assert movements[0].out_port is Direction.LOCAL
        assert movements[0].dst_node is None

    def test_one_flit_per_cycle_per_output(self):
        router = make_router(node=5)
        packet = Packet(src=5, dst=7, size=3, creation_cycle=0)
        load_packet(router, packet)
        power = PowerModel()
        total_moves = []
        for cycle in range(5):
            total_moves.extend(router.step(cycle, power))
        assert len(total_moves) == 3
        assert all(move.out_port is Direction.EAST for move in total_moves)

    def test_wormhole_holds_output_vc_until_tail(self):
        router = make_router(node=5, num_vcs=2)
        first = Packet(src=5, dst=7, size=3, creation_cycle=0)
        second = Packet(src=1, dst=7, size=1, creation_cycle=0)
        load_packet(router, first, port=Direction.LOCAL, vc=0)
        load_packet(router, second, port=Direction.SOUTH, vc=0)
        power = PowerModel()
        router.step(0, power)
        # Both packets request EAST; they must use *different* output VCs
        # because the first holds its VC until the tail flit departs.
        local_vc = router.inputs[Direction.LOCAL][0]
        south_vc = router.inputs[Direction.SOUTH][0]
        assert local_vc.out_vc != south_vc.out_vc

    def test_vc_state_returns_to_idle_after_tail(self):
        router = make_router(node=5)
        packet = Packet(src=5, dst=6, size=2, creation_cycle=0)
        load_packet(router, packet)
        power = PowerModel()
        for cycle in range(3):
            router.step(cycle, power)
        assert router.inputs[Direction.LOCAL][0].state is VCState.IDLE
        assert router.buffered_flits == 0

    def test_credit_exhaustion_blocks_traversal(self):
        router = make_router(node=5, buffer_depth=4)
        # Pretend the downstream buffer already holds two flits on every VC,
        # leaving only two credits for this packet's output VC.
        for vc in range(router.num_vcs):
            router.credits.consume(Direction.EAST, vc)
            router.credits.consume(Direction.EAST, vc)
        packet = Packet(src=5, dst=7, size=4, creation_cycle=0)
        load_packet(router, packet)
        power = PowerModel()
        moves = []
        for cycle in range(6):
            moves.extend(router.step(cycle, power))
        # Only the two remaining credits worth of flits can leave.
        assert len(moves) == 2
        router.release_credit(Direction.EAST, moves[0].out_vc)
        moves.extend(router.step(6, power))
        assert len(moves) == 3

    def test_dvfs_divider_gates_pipeline(self):
        router = make_router(node=5, operating_point=QUARTER_SPEED)
        packet = Packet(src=5, dst=6, size=1, creation_cycle=0)
        load_packet(router, packet)
        power = PowerModel()
        assert router.step(1, power) == []  # inactive cycle
        assert router.step(2, power) == []
        assert len(router.step(4, power)) == 1  # divider-4 active cycle

    def test_blocked_port_prevents_traversal(self):
        router = make_router(node=5)
        router.block_port(Direction.EAST)
        packet = Packet(src=5, dst=6, size=1, creation_cycle=0)  # needs EAST
        load_packet(router, packet)
        power = PowerModel()
        for cycle in range(3):
            assert router.step(cycle, power) == []

    def test_adaptive_routing_avoids_blocked_port_when_possible(self):
        router = make_router(node=5, routing=get_routing_algorithm("west_first"))
        router.block_port(Direction.EAST)
        # Destination north-east: west-first allows EAST or NORTH; EAST is
        # blocked so the router must pick NORTH.
        packet = Packet(src=5, dst=10, size=1, creation_cycle=0)
        load_packet(router, packet)
        movements = router.step(0, PowerModel())
        assert len(movements) == 1
        assert movements[0].out_port is Direction.NORTH

    def test_head_flit_required_at_front(self):
        router = make_router(node=5)
        packet = Packet(src=5, dst=6, size=3, creation_cycle=0)
        body_only = packet.flits()[1]
        router.receive_flit(Direction.LOCAL, 0, body_only)
        with pytest.raises(RuntimeError, match="ordering"):
            router.step(0, PowerModel())


class TestSelectionPolicies:
    def test_most_credits_prefers_uncongested_port(self):
        router = make_router(
            node=5,
            routing=get_routing_algorithm("west_first"),
            selection=SelectionPolicy.MOST_CREDITS,
        )
        # Drain credits on EAST so NORTH looks better for a north-east packet.
        for vc in range(router.num_vcs):
            for _ in range(router.buffer_depth):
                router.credits.consume(Direction.EAST, vc)
        packet = Packet(src=5, dst=10, size=1, creation_cycle=0)
        load_packet(router, packet)
        movements = router.step(0, PowerModel())
        assert movements and movements[0].out_port is Direction.NORTH

    def test_configuration_setters(self):
        router = make_router()
        router.set_routing(get_routing_algorithm("odd_even"))
        router.set_selection(SelectionPolicy.RANDOM)
        router.set_operating_point(QUARTER_SPEED)
        assert router.operating_point is QUARTER_SPEED
        with pytest.raises(ValueError):
            router.set_enabled_vcs(0)
        with pytest.raises(ValueError):
            router.set_enabled_vcs(router.num_vcs + 1)
