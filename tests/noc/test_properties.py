"""Property-based (hypothesis) tests over the whole simulator.

These encode the global invariants of a lossless, credit-flow-controlled
network: flit conservation, credit restoration, latency lower bounds and
buffer-occupancy bounds, under randomly drawn workloads and configurations.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc.network import NoCSimulator, SimulatorConfig
from repro.noc.packet import Packet
from repro.traffic.generator import TrafficGenerator

SIM_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SIM_SETTINGS
@given(
    rate=st.floats(min_value=0.02, max_value=0.25),
    pattern=st.sampled_from(["uniform", "transpose", "bit_complement", "hotspot"]),
    routing=st.sampled_from(["xy", "yx", "west_first", "north_last", "odd_even"]),
    dvfs_level=st.integers(min_value=0, max_value=3),
    packet_size=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_lossless_delivery_under_random_configuration(
    rate, pattern, routing, dvfs_level, packet_size, seed
):
    """Whatever the configuration, the network is lossless: every created
    packet is eventually delivered, credits return to full and latency never
    beats the physical lower bound."""
    config = SimulatorConfig(
        width=4, routing=routing, packet_size=packet_size, seed=seed
    )
    simulator = NoCSimulator(config)
    simulator.set_global_dvfs_level(dvfs_level)
    simulator.traffic = TrafficGenerator.from_names(
        simulator.topology, pattern, rate, packet_size=packet_size, seed=seed
    )
    simulator.run(400)
    simulator.drain(20_000)

    stats = simulator.stats
    assert stats.packets_delivered == stats.packets_created
    assert stats.flits_delivered == stats.flits_created
    assert stats.in_flight_packets == 0
    if stats.packets_delivered:
        assert stats.average_network_latency >= stats.average_hops + packet_size - 1
        assert stats.average_total_latency >= stats.average_network_latency
    for router in simulator.routers.values():
        assert router.buffered_flits == 0
        for port in router.credits.ports():
            for vc in range(router.num_vcs):
                assert router.credits.available(port, vc) == router.buffer_depth


@SIM_SETTINGS
@given(
    sources=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=30,
    ),
    routing=st.sampled_from(["xy", "odd_even"]),
)
def test_explicit_packet_batch_is_delivered_exactly_once(sources, routing):
    """A hand-built batch of packets is delivered exactly once each and hop
    counts never exceed the mesh diameter (no livelock with minimal routing)."""
    config = SimulatorConfig(width=4, routing=routing)
    simulator = NoCSimulator(config)
    packets = []
    for src, dst, size in sources:
        packet = Packet(src=src, dst=dst, size=size, creation_cycle=0)
        packets.append(packet)
        simulator.inject_packet(packet)
    simulator.drain(20_000)
    assert simulator.stats.packets_delivered == len(packets)
    for packet in packets:
        assert packet.delivered
        assert packet.hops == simulator.topology.hop_distance(packet.src, packet.dst)


@SIM_SETTINGS
@given(
    rate=st.floats(min_value=0.0, max_value=0.12),
    pattern=st.sampled_from(["uniform", "transpose", "hotspot"]),
    dvfs_level=st.integers(min_value=0, max_value=3),
    packet_size=st.integers(min_value=1, max_value=6),
    cycles=st.integers(min_value=100, max_value=600),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_idle_fast_path_is_telemetry_identical_to_slow_path(
    rate, pattern, dvfs_level, packet_size, cycles, seed
):
    """The idle-cycle fast path is an optimisation, not a semantic change:
    over a low-load epoch it must produce byte-identical statistics and
    energy (including the exact leakage floats) to the full cycle loop."""
    simulators = []
    for fast_path in (True, False):
        config = SimulatorConfig(width=4, packet_size=packet_size, seed=seed)
        simulator = NoCSimulator(config)
        simulator.idle_fast_path = fast_path
        simulator.set_global_dvfs_level(dvfs_level)
        simulator.traffic = TrafficGenerator.from_names(
            simulator.topology, pattern, rate, packet_size=packet_size, seed=seed
        )
        simulators.append(simulator)
    fast, slow = simulators

    fast_telemetry = fast.run_epoch(cycles)
    slow_telemetry = slow.run_epoch(cycles)
    assert fast_telemetry.as_dict() == slow_telemetry.as_dict()
    assert fast_telemetry.energy.as_dict() == slow_telemetry.energy.as_dict()
    assert fast.stats.snapshot() == slow.stats.snapshot()
    assert fast.power.energy.leakage_pj == slow.power.energy.leakage_pj
    assert slow.idle_cycles == 0
    if rate == 0.0:
        assert fast.idle_cycles == cycles


@SIM_SETTINGS
@given(
    occupancy_cycles=st.integers(min_value=50, max_value=300),
    rate=st.floats(min_value=0.1, max_value=0.6),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_buffer_occupancy_never_exceeds_capacity(occupancy_cycles, rate, seed):
    """No router ever buffers more flits than its ports x VCs x depth, even
    beyond saturation (credit back-pressure enforces the bound)."""
    config = SimulatorConfig(width=4, num_vcs=2, buffer_depth=4, seed=seed)
    simulator = NoCSimulator(config)
    simulator.traffic = TrafficGenerator.from_names(
        simulator.topology, "uniform", rate, packet_size=4, seed=seed
    )
    capacity = {
        node: len(router.input_ports) * router.num_vcs * router.buffer_depth
        for node, router in simulator.routers.items()
    }
    for _ in range(occupancy_cycles):
        simulator.step()
        for node, router in simulator.routers.items():
            assert 0 <= router.buffered_flits <= capacity[node]
