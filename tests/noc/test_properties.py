"""Property-based (hypothesis) tests over the whole simulator.

These encode the global invariants of a lossless, credit-flow-controlled
network: flit conservation, credit restoration, latency lower bounds and
buffer-occupancy bounds, under randomly drawn workloads and configurations —
plus the equivalence contract of the activity-tracked cycle engine: with
every optimisation enabled it must be *bit-identical* (statistics, energy
floats and all) to the naive scan-everything engine, including under
mid-run reconfiguration.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc.network import NoCSimulator, SimulatorConfig
from repro.noc.packet import Packet
from repro.traffic.generator import TrafficGenerator
from repro.traffic.injection import BernoulliInjection
from repro.traffic.patterns import get_pattern

SIM_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SIM_SETTINGS
@given(
    rate=st.floats(min_value=0.02, max_value=0.25),
    pattern=st.sampled_from(["uniform", "transpose", "bit_complement", "hotspot"]),
    routing=st.sampled_from(["xy", "yx", "west_first", "north_last", "odd_even"]),
    dvfs_level=st.integers(min_value=0, max_value=3),
    packet_size=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_lossless_delivery_under_random_configuration(
    rate, pattern, routing, dvfs_level, packet_size, seed
):
    """Whatever the configuration, the network is lossless: every created
    packet is eventually delivered, credits return to full and latency never
    beats the physical lower bound."""
    config = SimulatorConfig(
        width=4, routing=routing, packet_size=packet_size, seed=seed
    )
    simulator = NoCSimulator(config)
    simulator.set_global_dvfs_level(dvfs_level)
    simulator.traffic = TrafficGenerator.from_names(
        simulator.topology, pattern, rate, packet_size=packet_size, seed=seed
    )
    simulator.run(400)
    simulator.drain(20_000)

    stats = simulator.stats
    assert stats.packets_delivered == stats.packets_created
    assert stats.flits_delivered == stats.flits_created
    assert stats.in_flight_packets == 0
    if stats.packets_delivered:
        assert stats.average_network_latency >= stats.average_hops + packet_size - 1
        assert stats.average_total_latency >= stats.average_network_latency
    for router in simulator.routers.values():
        assert router.buffered_flits == 0
        for port in router.credits.ports():
            for vc in range(router.num_vcs):
                assert router.credits.available(port, vc) == router.buffer_depth


@SIM_SETTINGS
@given(
    sources=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=30,
    ),
    routing=st.sampled_from(["xy", "odd_even"]),
)
def test_explicit_packet_batch_is_delivered_exactly_once(sources, routing):
    """A hand-built batch of packets is delivered exactly once each and hop
    counts never exceed the mesh diameter (no livelock with minimal routing)."""
    config = SimulatorConfig(width=4, routing=routing)
    simulator = NoCSimulator(config)
    packets = []
    for src, dst, size in sources:
        packet = Packet(src=src, dst=dst, size=size, creation_cycle=0)
        packets.append(packet)
        simulator.inject_packet(packet)
    simulator.drain(20_000)
    assert simulator.stats.packets_delivered == len(packets)
    for packet in packets:
        assert packet.delivered
        assert packet.hops == simulator.topology.hop_distance(packet.src, packet.dst)


@SIM_SETTINGS
@given(
    rate=st.floats(min_value=0.0, max_value=0.12),
    pattern=st.sampled_from(["uniform", "transpose", "hotspot"]),
    dvfs_level=st.integers(min_value=0, max_value=3),
    packet_size=st.integers(min_value=1, max_value=6),
    cycles=st.integers(min_value=100, max_value=600),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_idle_fast_path_is_telemetry_identical_to_slow_path(
    rate, pattern, dvfs_level, packet_size, cycles, seed
):
    """The idle-cycle fast path is an optimisation, not a semantic change:
    over a low-load epoch it must produce byte-identical statistics and
    energy (including the exact leakage floats) to the full cycle loop."""
    simulators = []
    for fast_path in (True, False):
        config = SimulatorConfig(width=4, packet_size=packet_size, seed=seed)
        simulator = NoCSimulator(config)
        simulator.idle_fast_path = fast_path
        simulator.set_global_dvfs_level(dvfs_level)
        simulator.traffic = TrafficGenerator.from_names(
            simulator.topology, pattern, rate, packet_size=packet_size, seed=seed
        )
        simulators.append(simulator)
    fast, slow = simulators

    fast_telemetry = fast.run_epoch(cycles)
    slow_telemetry = slow.run_epoch(cycles)
    assert fast_telemetry.as_dict() == slow_telemetry.as_dict()
    assert fast_telemetry.energy.as_dict() == slow_telemetry.energy.as_dict()
    assert fast.stats.snapshot() == slow.stats.snapshot()
    assert fast.power.energy.leakage_pj == slow.power.energy.leakage_pj
    assert slow.idle_cycles == 0
    if rate == 0.0:
        assert fast.idle_cycles == cycles


#: Adjacent (src, dst) pairs of the 4x4 mesh used for fault events.
_FAULT_LINKS = [(1, 2), (5, 6), (6, 10), (9, 10), (0, 4), (10, 11)]

_EVENT_KINDS = ("node_dvfs", "global_dvfs", "fail", "repair", "vcs")


def _apply_event(simulator, kind, a, b):
    if kind == "node_dvfs":
        simulator.set_dvfs_level(a % 16, b)
    elif kind == "global_dvfs":
        simulator.set_global_dvfs_level(b)
    elif kind == "fail":
        simulator.fail_link(*_FAULT_LINKS[a % len(_FAULT_LINKS)])
    elif kind == "repair":
        simulator.repair_link(*_FAULT_LINKS[a % len(_FAULT_LINKS)])
    else:
        simulator.set_enabled_vcs(1 + b % simulator.config.num_vcs)


@SIM_SETTINGS
@given(
    rate=st.floats(min_value=0.0, max_value=0.25),
    pattern=st.sampled_from(["uniform", "transpose", "hotspot"]),
    routing=st.sampled_from(["xy", "odd_even", "west_first"]),
    packet_size=st.integers(min_value=1, max_value=5),
    cycles=st.integers(min_value=80, max_value=400),
    seed=st.integers(min_value=0, max_value=10_000),
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=399),
            st.sampled_from(_EVENT_KINDS),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=8,
    ),
)
def test_activity_engine_is_bit_identical_to_naive_engine(
    rate, pattern, routing, packet_size, cycles, seed, events
):
    """The activity-tracked engine (active sets, gated skip, idle fast path)
    and the naive scan-everything engine must produce byte-identical
    statistics and energy — including under mid-run per-node DVFS changes,
    link failures/repairs and enabled-VC reconfiguration."""
    by_cycle: dict[int, list[tuple[str, int, int]]] = {}
    for event_cycle, kind, a, b in events:
        by_cycle.setdefault(event_cycle, []).append((kind, a, b))

    simulators = []
    for optimised in (True, False):
        config = SimulatorConfig(
            width=4, routing=routing, packet_size=packet_size, seed=seed
        )
        simulator = NoCSimulator(config)
        simulator.activity_tracking = optimised
        simulator.idle_fast_path = optimised
        simulator.traffic = TrafficGenerator.from_names(
            simulator.topology, pattern, rate, packet_size=packet_size, seed=seed
        )

        def on_cycle(cycle, simulator=simulator):
            for kind, a, b in by_cycle.get(cycle, ()):
                _apply_event(simulator, kind, a, b)

        telemetry = simulator.run_epoch(cycles, on_cycle=on_cycle)
        simulators.append((simulator, telemetry))

    (fast, fast_telemetry), (naive, naive_telemetry) = simulators
    assert fast_telemetry.as_dict() == naive_telemetry.as_dict()
    assert fast_telemetry.energy.as_dict() == naive_telemetry.energy.as_dict()
    assert fast.stats.snapshot() == naive.stats.snapshot()
    assert fast.power.energy.leakage_pj == naive.power.energy.leakage_pj
    assert fast.buffered_flits == naive.buffered_flits
    assert fast.source_queue_backlog == naive.source_queue_backlog
    for node in fast.routers:
        assert fast.routers[node].buffered_flits == naive.routers[node].buffered_flits
    # The incremental activity state must agree with a full scan.
    assert fast.buffered_flits == sum(
        router.buffered_flits for router in fast.routers.values()
    )
    assert fast.source_queue_backlog == sum(
        len(queue) for queue in fast.model._source_queues.values()
    )
    assert fast.model.active_routers == {
        node for node, router in fast.routers.items() if router.buffered_flits
    }
    assert fast.model.nonempty_sources == {
        node for node, queue in fast.model._source_queues.items() if queue
    }
    assert naive.idle_cycles == 0
    assert naive.skipped_router_steps == 0


@SIM_SETTINGS
@given(
    rate=st.floats(min_value=0.0, max_value=0.25),
    pattern=st.sampled_from(["uniform", "transpose", "hotspot"]),
    routing=st.sampled_from(["xy", "odd_even", "west_first"]),
    packet_size=st.integers(min_value=1, max_value=5),
    cycles=st.integers(min_value=80, max_value=400),
    seed=st.integers(min_value=0, max_value=10_000),
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=399),
            st.sampled_from(_EVENT_KINDS),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=8,
    ),
)
def test_event_engine_is_bit_identical_to_cycle_engines_under_events(
    rate, pattern, routing, packet_size, cycles, seed, events
):
    """The calendar-queue event engine must produce byte-identical telemetry
    to both cycle-engine variants — the naive scan-everything loop and the
    default activity-tracked loop — including under mid-run per-node DVFS
    retunes, link failures/repairs and enabled-VC reconfiguration, and it
    must agree with the tracked loop on the ``idle_cycles`` counter."""
    by_cycle: dict[int, list[tuple[str, int, int]]] = {}
    for event_cycle, kind, a, b in events:
        by_cycle.setdefault(event_cycle, []).append((kind, a, b))

    simulators = []
    for engine, optimised in (("event", True), ("cycle", True), ("cycle", False)):
        config = SimulatorConfig(
            width=4, routing=routing, packet_size=packet_size, seed=seed, engine=engine
        )
        simulator = NoCSimulator(config)
        simulator.activity_tracking = optimised
        simulator.idle_fast_path = optimised
        simulator.traffic = TrafficGenerator.from_names(
            simulator.topology, pattern, rate, packet_size=packet_size, seed=seed
        )

        def on_cycle(cycle, simulator=simulator):
            for kind, a, b in by_cycle.get(cycle, ()):
                _apply_event(simulator, kind, a, b)

        telemetry = simulator.run_epoch(cycles, on_cycle=on_cycle)
        simulators.append((simulator, telemetry))

    (event, event_telemetry), (tracked, tracked_telemetry), (naive, naive_telemetry) = (
        simulators
    )
    for reference, reference_telemetry in ((tracked, tracked_telemetry), (naive, naive_telemetry)):
        assert event_telemetry.as_dict() == reference_telemetry.as_dict()
        assert event_telemetry.energy.as_dict() == reference_telemetry.energy.as_dict()
        assert event.stats.snapshot() == reference.stats.snapshot()
        assert event.power.energy.leakage_pj == reference.power.energy.leakage_pj
        assert event.buffered_flits == reference.buffered_flits
        assert event.source_queue_backlog == reference.source_queue_backlog
        for node in event.routers:
            assert (
                event.routers[node].buffered_flits
                == reference.routers[node].buffered_flits
            )
    # The idle-cycle accounting (part of ScenarioResult) must match the
    # tracked cycle engine's exactly, so whole scenario payloads compare
    # equal across engines.
    assert event.idle_cycles == tracked.idle_cycles
    # The event engine's own activity state must agree with a full scan.
    assert event.model.active_routers == {
        node for node, router in event.routers.items() if router.buffered_flits
    }
    assert event.model.nonempty_sources == {
        node for node, queue in event.model._source_queues.items() if queue
    }


@SIM_SETTINGS
@given(
    gap=st.integers(min_value=1, max_value=200),
    burst_cycles=st.integers(min_value=0, max_value=120),
    rate=st.floats(min_value=0.0, max_value=0.2),
    packet_size=st.integers(min_value=1, max_value=4),
    cycles=st.integers(min_value=100, max_value=500),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_idle_span_batching_is_bit_identical_to_per_cycle_idle_path(
    gap, burst_cycles, rate, packet_size, cycles, seed
):
    """A windowed traffic source (silent before ``gap`` and after the burst)
    lets the engine leap whole idle spans via ``next_injection_cycle``; the
    result must match the naive per-cycle engine bit for bit."""
    simulators = []
    for optimised in (True, False):
        config = SimulatorConfig(width=4, packet_size=packet_size, seed=seed)
        simulator = NoCSimulator(config)
        simulator.activity_tracking = optimised
        simulator.idle_fast_path = optimised
        simulator.traffic = TrafficGenerator(
            simulator.topology,
            get_pattern("uniform", simulator.topology),
            BernoulliInjection(rate, packet_size),
            packet_size=packet_size,
            seed=seed,
            start_cycle=gap,
            end_cycle=gap + burst_cycles,
        )
        telemetry = simulator.run_epoch(cycles)
        simulators.append((simulator, telemetry))

    (fast, fast_telemetry), (naive, naive_telemetry) = simulators
    assert fast_telemetry.as_dict() == naive_telemetry.as_dict()
    assert fast.stats.snapshot() == naive.stats.snapshot()
    assert fast.power.energy.leakage_pj == naive.power.energy.leakage_pj
    assert fast.cycle == naive.cycle == cycles
    # The leading gap is entirely idle, so the optimised engine must have
    # served at least those cycles through the fast path.
    assert fast.idle_cycles >= min(gap, cycles)


@SIM_SETTINGS
@given(
    occupancy_cycles=st.integers(min_value=50, max_value=300),
    rate=st.floats(min_value=0.1, max_value=0.6),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_buffer_occupancy_never_exceeds_capacity(occupancy_cycles, rate, seed):
    """No router ever buffers more flits than its ports x VCs x depth, even
    beyond saturation (credit back-pressure enforces the bound)."""
    config = SimulatorConfig(width=4, num_vcs=2, buffer_depth=4, seed=seed)
    simulator = NoCSimulator(config)
    simulator.traffic = TrafficGenerator.from_names(
        simulator.topology, "uniform", rate, packet_size=4, seed=seed
    )
    capacity = {
        node: len(router.input_ports) * router.num_vcs * router.buffer_depth
        for node, router in simulator.routers.items()
    }
    for _ in range(occupancy_cycles):
        simulator.step()
        for node, router in simulator.routers.items():
            assert 0 <= router.buffered_flits <= capacity[node]
