"""Unit tests for the energy model."""

import pytest

from repro.noc.dvfs import DVFS_LEVELS_DEFAULT, OperatingPoint
from repro.noc.power import EnergyBreakdown, PowerModel, PowerParameters

NOMINAL = DVFS_LEVELS_DEFAULT[0]
LOW = DVFS_LEVELS_DEFAULT[-1]


class TestPowerParameters:
    def test_rejects_negative_energies(self):
        with pytest.raises(ValueError):
            PowerParameters(buffer_write_pj=-1.0)

    def test_rejects_nonpositive_nominal_voltage(self):
        with pytest.raises(ValueError):
            PowerParameters(nominal_voltage=0.0)


class TestEnergyBreakdown:
    def test_totals(self):
        energy = EnergyBreakdown(buffer_pj=1.0, crossbar_pj=2.0, link_pj=3.0, leakage_pj=4.0)
        assert energy.dynamic_pj == pytest.approx(6.0)
        assert energy.total_pj == pytest.approx(10.0)

    def test_subtraction_gives_deltas(self):
        before = EnergyBreakdown(buffer_pj=1.0, leakage_pj=1.0)
        after = EnergyBreakdown(buffer_pj=3.0, crossbar_pj=2.0, leakage_pj=4.0)
        delta = after - before
        assert delta.buffer_pj == pytest.approx(2.0)
        assert delta.crossbar_pj == pytest.approx(2.0)
        assert delta.leakage_pj == pytest.approx(3.0)

    def test_copy_is_independent(self):
        original = EnergyBreakdown(buffer_pj=1.0)
        clone = original.copy()
        clone.buffer_pj += 5.0
        assert original.buffer_pj == pytest.approx(1.0)

    def test_as_dict_contains_totals(self):
        payload = EnergyBreakdown(link_pj=2.0).as_dict()
        assert payload["total_pj"] == pytest.approx(2.0)
        assert payload["dynamic_pj"] == pytest.approx(2.0)


class TestPowerModel:
    def test_events_accumulate_per_component(self):
        model = PowerModel()
        model.record_buffer_write(NOMINAL)
        model.record_buffer_read(NOMINAL)
        model.record_crossbar_traversal(NOMINAL)
        model.record_link_traversal(NOMINAL)
        params = model.parameters
        assert model.energy.buffer_pj == pytest.approx(
            params.buffer_write_pj + params.buffer_read_pj
        )
        assert model.energy.crossbar_pj == pytest.approx(params.crossbar_pj)
        assert model.energy.link_pj == pytest.approx(params.link_pj)

    def test_dynamic_energy_scales_with_voltage_squared(self):
        model = PowerModel()
        model.record_crossbar_traversal(NOMINAL)
        at_nominal = model.energy.crossbar_pj
        model.reset()
        model.record_crossbar_traversal(LOW)
        at_low = model.energy.crossbar_pj
        assert at_low == pytest.approx(at_nominal * LOW.voltage**2 / NOMINAL.voltage**2)

    def test_leakage_scales_linearly_with_voltage(self):
        model = PowerModel()
        model.record_router_leakage(NOMINAL)
        at_nominal = model.energy.leakage_pj
        model.reset()
        model.record_router_leakage(LOW)
        assert model.energy.leakage_pj == pytest.approx(
            at_nominal * LOW.voltage / NOMINAL.voltage
        )

    def test_multi_flit_events(self):
        model = PowerModel()
        model.record_link_traversal(NOMINAL, flits=5)
        assert model.energy.link_pj == pytest.approx(5 * model.parameters.link_pj)

    def test_snapshot_and_reset(self):
        model = PowerModel()
        model.record_buffer_write(NOMINAL)
        snapshot = model.snapshot()
        model.record_buffer_write(NOMINAL)
        delta = model.snapshot() - snapshot
        assert delta.buffer_pj == pytest.approx(model.parameters.buffer_write_pj)
        model.reset()
        assert model.energy.total_pj == 0.0

    def test_custom_operating_point_above_nominal(self):
        boost = OperatingPoint(name="boost", voltage=1.2, frequency_ghz=2.4, divider=1)
        model = PowerModel()
        model.record_crossbar_traversal(boost)
        assert model.energy.crossbar_pj > model.parameters.crossbar_pj


class TestBatchedAccrual:
    def test_accrue_matches_per_cycle_record_calls_bitwise(self):
        reference = PowerModel()
        increments = [
            reference.router_leakage_increment(NOMINAL),
            reference.link_leakage_increment(LOW, links=3),
            reference.router_leakage_increment(LOW),
        ]
        for _ in range(7):
            reference.record_router_leakage(NOMINAL)
            reference.record_link_leakage(LOW, links=3)
            reference.record_router_leakage(LOW)
        batched = PowerModel()
        batched.accrue_leakage_increments(increments, cycles=7)
        assert batched.energy.leakage_pj == reference.energy.leakage_pj

    def test_fused_flit_traversal_matches_individual_events(self):
        reference = PowerModel()
        reference.record_buffer_read(LOW)
        reference.record_crossbar_traversal(LOW)
        reference.record_link_traversal(LOW)
        fused = PowerModel()
        fused.record_flit_traversal(LOW, link=True)
        assert fused.energy.as_dict() == reference.energy.as_dict()
        local = PowerModel()
        local.record_flit_traversal(LOW, link=False)
        assert local.energy.link_pj == 0.0
        assert local.energy.buffer_pj == reference.energy.buffer_pj

    def test_scale_memo_tracks_operating_point_changes(self):
        model = PowerModel()
        model.record_buffer_write(NOMINAL)
        at_nominal = model.energy.buffer_pj
        model.record_buffer_write(LOW)
        assert model.energy.buffer_pj - at_nominal < at_nominal  # lower V^2 scale
