"""Unit and property tests for credit-based flow control."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.flow_control import CreditBook
from repro.noc.topology import Direction

PORTS = [Direction.NORTH, Direction.EAST]


class TestCreditBook:
    def test_initial_credits_equal_depth(self):
        book = CreditBook(PORTS, num_vcs=2, depth=4)
        for port in PORTS:
            for vc in range(2):
                assert book.available(port, vc) == 4
            assert book.total_available(port) == 8

    def test_consume_and_release_roundtrip(self):
        book = CreditBook(PORTS, num_vcs=1, depth=2)
        book.consume(Direction.NORTH, 0)
        assert book.available(Direction.NORTH, 0) == 1
        assert book.has_credit(Direction.NORTH, 0)
        book.consume(Direction.NORTH, 0)
        assert not book.has_credit(Direction.NORTH, 0)
        book.release(Direction.NORTH, 0)
        assert book.available(Direction.NORTH, 0) == 1

    def test_underflow_raises(self):
        book = CreditBook(PORTS, num_vcs=1, depth=1)
        book.consume(Direction.EAST, 0)
        with pytest.raises(RuntimeError, match="underflow"):
            book.consume(Direction.EAST, 0)

    def test_overflow_raises(self):
        book = CreditBook(PORTS, num_vcs=1, depth=1)
        with pytest.raises(RuntimeError, match="overflow"):
            book.release(Direction.EAST, 0)

    def test_ports_are_independent(self):
        book = CreditBook(PORTS, num_vcs=1, depth=3)
        book.consume(Direction.NORTH, 0)
        assert book.available(Direction.EAST, 0) == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CreditBook(PORTS, num_vcs=0, depth=4)
        with pytest.raises(ValueError):
            CreditBook(PORTS, num_vcs=1, depth=0)

    def test_ports_listing(self):
        book = CreditBook(PORTS, num_vcs=1, depth=1)
        assert book.ports() == PORTS


@settings(max_examples=100, deadline=None)
@given(
    depth=st.integers(min_value=1, max_value=8),
    operations=st.lists(st.booleans(), max_size=100),
)
def test_credits_always_within_bounds(depth, operations):
    """Credits never leave [0, depth] regardless of consume/release order;
    illegal transitions raise instead of corrupting state."""
    book = CreditBook([Direction.NORTH], num_vcs=1, depth=depth)
    outstanding = 0
    for consume in operations:
        if consume:
            if outstanding < depth:
                book.consume(Direction.NORTH, 0)
                outstanding += 1
            else:
                with pytest.raises(RuntimeError):
                    book.consume(Direction.NORTH, 0)
        else:
            if outstanding > 0:
                book.release(Direction.NORTH, 0)
                outstanding -= 1
            else:
                with pytest.raises(RuntimeError):
                    book.release(Direction.NORTH, 0)
        assert 0 <= book.available(Direction.NORTH, 0) <= depth
        assert book.available(Direction.NORTH, 0) == depth - outstanding
