"""Unit tests for the packet/flit data model."""

import pytest

from repro.noc.packet import Flit, FlitType, Packet, reset_packet_ids


class TestPacket:
    def test_packet_ids_are_unique(self):
        first = Packet(src=0, dst=1, size=4, creation_cycle=0)
        second = Packet(src=0, dst=1, size=4, creation_cycle=0)
        assert first.packet_id != second.packet_id

    def test_reset_packet_ids(self):
        reset_packet_ids()
        packet = Packet(src=0, dst=1, size=1, creation_cycle=0)
        assert packet.packet_id == 0

    def test_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, size=0, creation_cycle=0)

    def test_latency_requires_delivery(self):
        packet = Packet(src=0, dst=1, size=4, creation_cycle=10)
        assert not packet.delivered
        with pytest.raises(ValueError):
            _ = packet.total_latency
        with pytest.raises(ValueError):
            _ = packet.network_latency

    def test_latency_accounting(self):
        packet = Packet(src=0, dst=1, size=4, creation_cycle=10)
        packet.injection_cycle = 13
        packet.arrival_cycle = 25
        assert packet.delivered
        assert packet.total_latency == 15
        assert packet.network_latency == 12


class TestFlitSegmentation:
    def test_single_flit_packet(self):
        packet = Packet(src=0, dst=1, size=1, creation_cycle=0)
        flits = packet.flits()
        assert len(flits) == 1
        assert flits[0].flit_type is FlitType.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_two_flit_packet_has_head_and_tail(self):
        packet = Packet(src=0, dst=1, size=2, creation_cycle=0)
        kinds = [flit.flit_type for flit in packet.flits()]
        assert kinds == [FlitType.HEAD, FlitType.TAIL]

    def test_multi_flit_packet_structure(self):
        packet = Packet(src=2, dst=9, size=5, creation_cycle=0)
        flits = packet.flits()
        assert len(flits) == 5
        assert flits[0].flit_type is FlitType.HEAD
        assert flits[-1].flit_type is FlitType.TAIL
        assert all(flit.flit_type is FlitType.BODY for flit in flits[1:-1])
        assert [flit.index for flit in flits] == list(range(5))

    def test_flits_share_packet_metadata(self):
        packet = Packet(src=3, dst=7, size=3, creation_cycle=5)
        for flit in packet.flits():
            assert flit.src == 3
            assert flit.dst == 7
            assert flit.packet is packet

    def test_body_flits_are_neither_head_nor_tail(self):
        body = Flit(
            packet=Packet(src=0, dst=1, size=3, creation_cycle=0),
            flit_type=FlitType.BODY,
            index=1,
        )
        assert not body.is_head
        assert not body.is_tail
