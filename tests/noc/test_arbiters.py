"""Unit tests for switch arbiters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.arbiters import PriorityArbiter, RoundRobinArbiter


class TestRoundRobinArbiter:
    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter([])

    def test_rejects_duplicate_universe(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(["a", "a"])

    def test_no_requests_yields_no_grant(self):
        arbiter = RoundRobinArbiter(["a", "b"])
        assert arbiter.grant([]) is None

    def test_unknown_request_raises(self):
        arbiter = RoundRobinArbiter(["a", "b"])
        with pytest.raises(ValueError):
            arbiter.grant(["c"])

    def test_single_requester_always_wins(self):
        arbiter = RoundRobinArbiter(["a", "b", "c"])
        for _ in range(5):
            assert arbiter.grant(["b"]) == "b"

    def test_full_contention_is_fair(self):
        universe = ["a", "b", "c", "d"]
        arbiter = RoundRobinArbiter(universe)
        grants = [arbiter.grant(universe) for _ in range(8)]
        assert grants == ["a", "b", "c", "d", "a", "b", "c", "d"]

    def test_pointer_advances_past_winner(self):
        arbiter = RoundRobinArbiter(["a", "b", "c"])
        assert arbiter.grant(["a", "c"]) == "a"
        assert arbiter.grant(["a", "c"]) == "c"
        assert arbiter.grant(["a", "c"]) == "a"

    def test_partial_contention_does_not_starve(self):
        arbiter = RoundRobinArbiter(["a", "b", "c"])
        grants = [arbiter.grant(["b", "c"]) for _ in range(6)]
        assert grants.count("b") == 3
        assert grants.count("c") == 3


@settings(max_examples=100, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=8),
    rounds=st.integers(min_value=1, max_value=40),
    data=st.data(),
)
def test_round_robin_fairness_property(size, rounds, data):
    """No requester is granted twice before every other persistent requester
    is granted once (bounded waiting)."""
    universe = list(range(size))
    arbiter = RoundRobinArbiter(universe)
    persistent = data.draw(
        st.lists(st.sampled_from(universe), min_size=1, max_size=size, unique=True)
    )
    grants = [arbiter.grant(persistent) for _ in range(rounds)]
    assert all(grant in persistent for grant in grants)
    counts = {key: grants.count(key) for key in persistent}
    assert max(counts.values()) - min(counts.values()) <= 1


class TestPriorityArbiter:
    def test_earlier_entries_win(self):
        arbiter = PriorityArbiter(["high", "mid", "low"])
        assert arbiter.grant(["low", "mid"]) == "mid"
        assert arbiter.grant(["low", "high"]) == "high"

    def test_empty_requests(self):
        arbiter = PriorityArbiter(["a"])
        assert arbiter.grant([]) is None

    def test_unknown_requests_are_ignored(self):
        arbiter = PriorityArbiter(["a", "b"])
        assert arbiter.grant(["z"]) is None

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            PriorityArbiter([])
