"""Integration tests for the full NoC simulator cycle loop."""

import pytest

from repro.noc.network import NoCSimulator, SimulatorConfig
from repro.noc.packet import Packet
from repro.noc.routing import SelectionPolicy
from repro.noc.topology import Direction
from repro.traffic.generator import TrafficGenerator
from repro.traffic.injection import BernoulliInjection
from repro.traffic.patterns import get_pattern

from tests.conftest import make_simulator, single_packet_simulator


class TestConfig:
    def test_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            SimulatorConfig(packet_size=0)

    def test_rejects_bad_dvfs_index(self):
        with pytest.raises(ValueError):
            SimulatorConfig(initial_dvfs_level=10)

    def test_rejects_unknown_routing(self):
        with pytest.raises(KeyError):
            SimulatorConfig(routing="banana")

    def test_builds_torus_when_requested(self):
        config = SimulatorConfig(width=4, torus=True)
        simulator = NoCSimulator(config)
        assert simulator.topology.neighbor(0, Direction.WEST) is not None


class TestSinglePacketDelivery:
    def test_minimum_latency_single_hop(self):
        simulator, packet = single_packet_simulator(src=0, dst=1, size=4)
        simulator.drain(100)
        assert packet.delivered
        assert packet.hops == 1
        # head: 1 hop + ejection, tail trails size-1 cycles behind
        assert packet.network_latency == packet.hops + packet.size - 1

    def test_minimum_latency_across_the_diagonal(self):
        simulator, packet = single_packet_simulator(src=0, dst=15, size=4)
        simulator.drain(200)
        assert packet.delivered
        assert packet.hops == simulator.topology.hop_distance(0, 15) == 6
        assert packet.network_latency == packet.hops + packet.size - 1

    def test_single_flit_packet(self):
        simulator, packet = single_packet_simulator(src=3, dst=12, size=1)
        simulator.drain(100)
        assert packet.delivered
        assert packet.network_latency == packet.hops

    def test_xy_routing_hops_match_manhattan_distance(self):
        for src, dst in [(0, 5), (2, 13), (15, 4), (7, 8)]:
            simulator, packet = single_packet_simulator(src=src, dst=dst)
            simulator.drain(200)
            assert packet.hops == simulator.topology.hop_distance(src, dst)

    def test_self_directed_packet_delivered_without_entering_network(self):
        config = SimulatorConfig(width=4)
        simulator = NoCSimulator(config)
        packet = Packet(src=5, dst=5, size=4, creation_cycle=0)
        simulator.inject_packet(packet)
        assert packet.delivered
        assert packet.hops == 0
        assert simulator.stats.packets_delivered == 1
        assert simulator.buffered_flits == 0

    def test_slower_dvfs_increases_latency(self):
        fast_sim, fast_packet = single_packet_simulator(src=0, dst=15, size=4)
        fast_sim.drain(200)
        slow_sim, slow_packet = single_packet_simulator(src=0, dst=15, size=4)
        slow_sim.set_global_dvfs_level(3)
        slow_sim.drain(400)
        assert slow_packet.total_latency > fast_packet.total_latency


class TestConservationLaws:
    @pytest.mark.parametrize("routing", ["xy", "odd_even", "west_first"])
    def test_every_created_packet_is_delivered(self, routing):
        simulator = make_simulator(rate=0.15, routing=routing, seed=3)
        simulator.run(1500)
        simulator.drain(5000)
        stats = simulator.stats
        assert stats.packets_created > 50
        assert stats.packets_delivered == stats.packets_created
        assert stats.flits_delivered == stats.flits_created

    def test_credits_fully_restored_after_drain(self):
        simulator = make_simulator(rate=0.2, seed=7)
        simulator.run(800)
        simulator.drain(5000)
        for router in simulator.routers.values():
            for port in router.credits.ports():
                for vc in range(router.num_vcs):
                    assert router.credits.available(port, vc) == router.buffer_depth

    def test_latency_lower_bound(self):
        simulator = make_simulator(rate=0.05, seed=11)
        simulator.run(1000)
        simulator.drain(5000)
        stats = simulator.stats
        # Minimum possible latency is hops + serialization.
        assert stats.average_network_latency >= stats.average_hops + simulator.config.packet_size - 1
        assert stats.average_total_latency >= stats.average_network_latency

    def test_in_flight_accounting(self):
        simulator = make_simulator(rate=0.3, seed=5)
        simulator.run(300)
        stats = simulator.stats
        assert stats.in_flight_packets >= 0
        assert stats.packets_injected <= stats.packets_created
        simulator.drain(5000)
        assert simulator.stats.in_flight_packets == 0


class TestReconfigurationSurface:
    def test_global_dvfs_level_applies_to_all_routers(self):
        simulator = make_simulator()
        simulator.set_global_dvfs_level(2)
        point = simulator.config.dvfs_levels[2]
        assert all(router.operating_point is point for router in simulator.routers.values())
        assert simulator.dvfs_level_index == 2

    def test_invalid_dvfs_level_rejected(self):
        simulator = make_simulator()
        with pytest.raises(ValueError):
            simulator.set_global_dvfs_level(99)
        with pytest.raises(ValueError):
            simulator.set_dvfs_level(0, -1)

    def test_per_node_dvfs_override(self):
        simulator = make_simulator()
        simulator.set_dvfs_level(5, 3)
        assert simulator.routers[5].operating_point is simulator.config.dvfs_levels[3]
        assert simulator.routers[6].operating_point is simulator.config.dvfs_levels[0]

    def test_routing_reconfiguration(self):
        simulator = make_simulator()
        simulator.set_routing_algorithm("odd_even")
        assert simulator.routing_name == "odd_even"
        assert all(
            router.routing.name == "odd_even" for router in simulator.routers.values()
        )

    def test_enabled_vc_reconfiguration(self):
        simulator = make_simulator(num_vcs=2)
        simulator.set_enabled_vcs(1)
        assert simulator.enabled_vcs == 1
        assert all(router.enabled_vcs == 1 for router in simulator.routers.values())

    def test_lower_dvfs_level_saves_energy_and_costs_latency(self):
        fast = make_simulator(rate=0.1, seed=9)
        fast.run(1500)
        slow = make_simulator(rate=0.1, seed=9)
        slow.set_global_dvfs_level(3)
        slow.run(1500)
        assert slow.power.energy.total_pj < fast.power.energy.total_pj
        assert slow.stats.average_total_latency > fast.stats.average_total_latency

    def test_reduced_vcs_still_deliver_traffic(self):
        simulator = make_simulator(rate=0.1, num_vcs=2, seed=13)
        simulator.set_enabled_vcs(1)
        simulator.run(800)
        simulator.drain(5000)
        assert simulator.stats.packets_delivered == simulator.stats.packets_created


class TestFaultInjection:
    def test_failed_link_blocks_xy_traffic(self):
        simulator, packet = single_packet_simulator(src=0, dst=3, size=2)
        simulator.fail_link(1, 2)
        simulator.run(200)
        assert not packet.delivered

    def test_repaired_link_resumes_delivery(self):
        simulator, packet = single_packet_simulator(src=0, dst=3, size=2)
        simulator.fail_link(1, 2)
        simulator.run(100)
        simulator.repair_link(1, 2)
        simulator.drain(200)
        assert packet.delivered

    def test_adaptive_routing_survives_single_link_failure(self):
        config = SimulatorConfig(width=4, routing="west_first")
        simulator = NoCSimulator(config)
        # Packet 0 -> 10 can route around a failed vertical link.
        simulator.fail_link(0, 4)
        packet = Packet(src=0, dst=10, size=2, creation_cycle=0)
        simulator.inject_packet(packet)
        simulator.drain(300)
        assert packet.delivered

    def test_drain_raises_when_packets_are_trapped(self):
        simulator, _packet = single_packet_simulator(src=0, dst=3, size=2)
        simulator.fail_link(1, 2)
        with pytest.raises(RuntimeError, match="drain"):
            simulator.drain(100)

    def test_fail_link_rejects_nonexistent_links(self):
        simulator = make_simulator()
        with pytest.raises(ValueError, match="no directed link"):
            simulator.fail_link(0, 5)  # nodes exist but are not adjacent
        with pytest.raises(ValueError, match="no directed link"):
            simulator.fail_link(0, 99)  # node outside the topology
        with pytest.raises(ValueError, match="no directed link"):
            simulator.repair_link(0, 2)  # two hops apart

    def test_mesh_border_has_no_wraparound_link(self):
        simulator = make_simulator()
        # Node 3 is the east border of a 4x4 mesh; 0 is the west border.
        with pytest.raises(ValueError, match="no directed link"):
            simulator.fail_link(3, 0)

    def test_failed_links_are_tracked_and_repair_is_idempotent(self):
        simulator = make_simulator()
        assert simulator.failed_links == frozenset()
        simulator.fail_link(1, 2)
        simulator.fail_link(2, 1)
        assert simulator.failed_links == {(1, 2), (2, 1)}
        simulator.repair_link(1, 2)
        assert simulator.failed_links == {(2, 1)}
        # Repairing a healthy (but existing) link stays a no-op.
        simulator.repair_link(1, 2)
        assert simulator.failed_links == {(2, 1)}


class TestActivityTracking:
    def test_activity_sets_track_occupancy_exactly(self):
        simulator = make_simulator(rate=0.25, seed=4)
        for _ in range(10):
            simulator.run(25)
            assert simulator.model.active_routers == {
                node
                for node, router in simulator.routers.items()
                if router.buffered_flits
            }
            assert simulator.model.nonempty_sources == {
                node for node, queue in simulator.model._source_queues.items() if queue
            }
            assert simulator.buffered_flits == sum(
                router.buffered_flits for router in simulator.routers.values()
            )
            assert simulator.source_queue_backlog == sum(
                len(queue) for queue in simulator.model._source_queues.values()
            )

    def test_skipped_router_steps_counts_avoided_work(self):
        simulator = make_simulator(rate=0.02, seed=6)
        simulator.run(300)
        # Sixteen routers, 300 cycles: the naive engine would step 4800
        # times; a near-idle network must skip the overwhelming majority.
        assert simulator.skipped_router_steps > 4_000
        naive = make_simulator(rate=0.02, seed=6)
        naive.activity_tracking = False
        naive.idle_fast_path = False
        naive.run(300)
        assert naive.skipped_router_steps == 0
        assert naive.stats.snapshot() == simulator.stats.snapshot()

    def test_gated_cycles_are_skipped_at_low_dvfs(self):
        simulator = make_simulator(rate=0.3, seed=2)
        simulator.set_global_dvfs_level(3)  # divider 4: 3 of 4 cycles gated
        simulator.run(400)
        assert simulator.skipped_router_steps >= 300 // 4 * 3 * 16

    def test_toggling_tracking_mid_run_is_safe(self):
        simulator = make_simulator(rate=0.2, seed=9)
        simulator.run(150)
        simulator.activity_tracking = False
        simulator.run(150)
        simulator.activity_tracking = True
        simulator.run(150)
        reference = make_simulator(rate=0.2, seed=9)
        reference.run(450)
        assert simulator.stats.snapshot() == reference.stats.snapshot()
        assert simulator.power.energy.leakage_pj == reference.power.energy.leakage_pj

    def test_dvfs_change_invalidates_leakage_cache(self):
        simulator = make_simulator(rate=0.0)
        simulator.run(10)
        before = list(simulator.model._cycle_leakage_increments())
        simulator.set_dvfs_level(5, 3)
        after = simulator.model._cycle_leakage_increments()
        assert after != before

    def test_set_enabled_vcs_validates_before_reconfiguring(self):
        simulator = make_simulator(num_vcs=2)
        simulator.set_enabled_vcs(1)
        with pytest.raises(ValueError, match=r"enabled VC count"):
            simulator.set_enabled_vcs(5)
        with pytest.raises(ValueError, match=r"enabled VC count"):
            simulator.set_enabled_vcs(0)
        # No router may be left reconfigured by the failed calls.
        assert all(router.enabled_vcs == 1 for router in simulator.routers.values())
        assert simulator.enabled_vcs == 1


class TestIdleSpanBatching:
    def test_windowed_traffic_leaps_the_leading_gap(self):
        config = SimulatorConfig(width=4)
        simulator = NoCSimulator(config)
        simulator.traffic = TrafficGenerator(
            simulator.topology,
            get_pattern("uniform", simulator.topology),
            BernoulliInjection(0.1, 4),
            packet_size=4,
            seed=0,
            start_cycle=500,
        )
        simulator.run(500)
        assert simulator.cycle == 500
        assert simulator.idle_cycles == 500
        assert simulator.stats.cycles == 500
        simulator.run(100)
        assert simulator.stats.packets_created > 0

    def test_no_traffic_source_batches_to_the_horizon(self):
        simulator = NoCSimulator(SimulatorConfig(width=4))
        simulator.run(10_000)
        assert simulator.cycle == 10_000
        assert simulator.idle_cycles == 10_000
        assert simulator.stats.cycles == 10_000
        assert simulator.power.energy.leakage_pj > 0.0

    def test_step_advances_exactly_one_cycle(self):
        simulator = NoCSimulator(SimulatorConfig(width=4))
        simulator.step()
        assert simulator.cycle == 1
        assert simulator.idle_cycles == 1

    def test_on_cycle_hook_sees_every_cycle_despite_batching(self):
        simulator = NoCSimulator(SimulatorConfig(width=4))
        seen = []
        simulator.run(50, on_cycle=seen.append)
        assert seen == list(range(50))


class TestDrain:
    def test_drain_on_empty_network_returns_immediately(self):
        simulator = make_simulator(rate=0.0)
        simulator.run(50)
        before = simulator.stats.cycles
        assert simulator.drain(10_000) == 0
        assert simulator.stats.cycles == before  # not a single cycle simulated

    def test_drain_error_reports_backlog(self):
        simulator, _packet = single_packet_simulator(src=0, dst=3, size=2)
        simulator.fail_link(1, 2)
        with pytest.raises(RuntimeError, match=r"buffered_flits=\d+") as excinfo:
            simulator.drain(100)
        assert "source_queue_backlog=" in str(excinfo.value)


class TestIdleFastPath:
    def test_idle_cycles_counted_at_low_load(self):
        simulator = make_simulator(rate=0.0)
        simulator.run(300)
        assert simulator.idle_cycles == 300
        assert simulator.stats.cycles == 300
        assert simulator.power.energy.leakage_pj > 0.0
        assert simulator.power.energy.dynamic_pj == 0.0

    def test_fast_path_never_fires_while_flits_are_in_flight(self):
        simulator = make_simulator(rate=0.4, seed=1)
        simulator.run(300)
        busy_idle = simulator.idle_cycles
        assert busy_idle < 10
        drained_in = simulator.drain(10_000)
        assert simulator.idle_cycles == busy_idle  # drain exits once empty
        assert drained_in >= 0

    def test_disabling_the_fast_path_restores_the_full_loop(self):
        simulator = make_simulator(rate=0.0)
        simulator.idle_fast_path = False
        simulator.run(100)
        assert simulator.idle_cycles == 0


class TestEpochTelemetry:
    def test_epoch_indices_increase(self):
        simulator = make_simulator(rate=0.1)
        first = simulator.run_epoch(200)
        second = simulator.run_epoch(200)
        assert first.epoch_index == 0
        assert second.epoch_index == 1

    def test_epoch_counters_are_deltas(self):
        simulator = make_simulator(rate=0.1, seed=21)
        first = simulator.run_epoch(300)
        second = simulator.run_epoch(300)
        total = simulator.stats
        assert first.packets_created + second.packets_created == total.packets_created
        assert first.energy.total_pj + second.energy.total_pj == pytest.approx(
            simulator.power.energy.total_pj
        )

    def test_epoch_rates_are_sane(self):
        simulator = make_simulator(rate=0.2, seed=2)
        telemetry = simulator.run_epoch(500)
        assert 0.0 <= telemetry.link_utilization <= 1.0
        assert telemetry.offered_load_flits_per_node_cycle == pytest.approx(0.2, abs=0.08)
        assert telemetry.throughput_flits_per_node_cycle <= telemetry.offered_load_flits_per_node_cycle + 0.05
        assert telemetry.average_buffer_occupancy >= 0.0
        assert telemetry.energy_per_flit_pj > 0.0

    def test_epoch_records_configuration(self):
        simulator = make_simulator(rate=0.05)
        simulator.set_global_dvfs_level(1)
        simulator.set_routing_algorithm("odd_even")
        telemetry = simulator.run_epoch(100)
        assert telemetry.dvfs_level_index == 1
        assert telemetry.routing_name == "odd_even"
        assert telemetry.enabled_vcs == simulator.config.num_vcs

    def test_rejects_empty_epoch(self):
        simulator = make_simulator()
        with pytest.raises(ValueError):
            simulator.run_epoch(0)

    def test_telemetry_as_dict_is_json_friendly(self):
        simulator = make_simulator(rate=0.1)
        telemetry = simulator.run_epoch(100)
        payload = telemetry.as_dict()
        assert isinstance(payload["average_total_latency"], float)
        assert payload["cycles"] == 100


class TestSelectionPolicies:
    def test_random_selection_still_delivers(self):
        simulator = make_simulator(
            rate=0.1, routing="odd_even", selection=SelectionPolicy.RANDOM, seed=17
        )
        simulator.run(800)
        simulator.drain(5000)
        assert simulator.stats.packets_delivered == simulator.stats.packets_created

    def test_first_selection_still_delivers(self):
        simulator = make_simulator(
            rate=0.1, routing="west_first", selection=SelectionPolicy.FIRST, seed=19
        )
        simulator.run(800)
        simulator.drain(5000)
        assert simulator.stats.packets_delivered == simulator.stats.packets_created


class TestIdleCycleStats:
    def test_record_idle_cycles_equals_repeated_record_cycle(self):
        from repro.noc.stats import NetworkStats

        batched = NetworkStats()
        batched.record_idle_cycles(9)
        reference = NetworkStats()
        for _ in range(9):
            reference.record_cycle(0, 0)
        assert batched.snapshot() == reference.snapshot()
