"""Unit tests for DVFS operating points and schedules."""

import pytest

from repro.noc.dvfs import DVFS_LEVELS_DEFAULT, DvfsSchedule, OperatingPoint


class TestOperatingPoint:
    def test_default_ladder_is_ordered(self):
        voltages = [point.voltage for point in DVFS_LEVELS_DEFAULT]
        frequencies = [point.frequency_ghz for point in DVFS_LEVELS_DEFAULT]
        dividers = [point.divider for point in DVFS_LEVELS_DEFAULT]
        assert voltages == sorted(voltages, reverse=True)
        assert frequencies == sorted(frequencies, reverse=True)
        assert dividers == sorted(dividers)

    def test_active_cycles_follow_divider(self):
        point = OperatingPoint(name="half", voltage=0.9, frequency_ghz=1.0, divider=2)
        active = [cycle for cycle in range(10) if point.is_active_cycle(cycle)]
        assert active == [0, 2, 4, 6, 8]

    def test_full_speed_always_active(self):
        point = DVFS_LEVELS_DEFAULT[0]
        assert all(point.is_active_cycle(cycle) for cycle in range(20))

    def test_relative_power_decreases_down_the_ladder(self):
        dynamic = [point.relative_dynamic_power for point in DVFS_LEVELS_DEFAULT]
        static = [point.relative_static_power for point in DVFS_LEVELS_DEFAULT]
        assert dynamic == sorted(dynamic, reverse=True)
        assert static == sorted(static, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(name="bad", voltage=0, frequency_ghz=1.0, divider=1)
        with pytest.raises(ValueError):
            OperatingPoint(name="bad", voltage=1.0, frequency_ghz=-1.0, divider=1)
        with pytest.raises(ValueError):
            OperatingPoint(name="bad", voltage=1.0, frequency_ghz=1.0, divider=0)


class TestDvfsSchedule:
    def test_default_level_applies_everywhere(self):
        schedule = DvfsSchedule(default_level=1)
        assert schedule.level_index_for_epoch(0) == 1
        assert schedule.level_index_for_epoch(99) == 1

    def test_explicit_epoch_levels_override_default(self):
        schedule = DvfsSchedule(default_level=0)
        schedule.set_epoch_level(3, 2)
        assert schedule.level_index_for_epoch(3) == 2
        assert schedule.level_index_for_epoch(4) == 0
        assert schedule.level_for_epoch(3) is DVFS_LEVELS_DEFAULT[2]

    def test_constant_schedule(self):
        schedule = DvfsSchedule.constant(3)
        assert all(schedule.level_index_for_epoch(epoch) == 3 for epoch in range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            DvfsSchedule(levels=())
        with pytest.raises(ValueError):
            DvfsSchedule(default_level=10)
        schedule = DvfsSchedule()
        with pytest.raises(ValueError):
            schedule.set_epoch_level(0, 99)
