"""Unit tests for the numpy MLP: shapes, gradients, serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.networks import MLP, huber_loss_grad


class TestConstruction:
    def test_requires_two_layers(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            MLP([4, 0, 2])

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 2], activation="swish")

    def test_parameter_shapes(self):
        net = MLP([3, 8, 5, 2])
        shapes = [w.shape for w in net.weights]
        assert shapes == [(3, 8), (8, 5), (5, 2)]
        assert [b.shape for b in net.biases] == [(8,), (5,), (2,)]

    def test_seed_reproducibility(self):
        a, b = MLP([4, 8, 2], seed=7), MLP([4, 8, 2], seed=7)
        for wa, wb in zip(a.weights, b.weights):
            np.testing.assert_array_equal(wa, wb)


class TestForward:
    def test_single_vector_and_batch_agree(self):
        net = MLP([3, 6, 2], seed=1)
        x = np.array([0.1, -0.4, 0.7])
        single = net.forward(x)
        batch = net.forward(np.stack([x, x]))
        assert single.shape == (2,)
        assert batch.shape == (2, 2)
        np.testing.assert_allclose(batch[0], single)
        np.testing.assert_allclose(batch[1], single)

    def test_linear_network_is_affine(self):
        net = MLP([2, 3], seed=0)
        x = np.array([1.0, 2.0])
        expected = x @ net.weights[0] + net.biases[0]
        np.testing.assert_allclose(net.forward(x), expected)

    def test_relu_blocks_negative_preactivations(self):
        net = MLP([1, 1, 1], activation="relu", seed=0)
        net.weights[0][:] = -1.0
        net.biases[0][:] = 0.0
        net.weights[1][:] = 1.0
        net.biases[1][:] = 0.0
        assert net.forward(np.array([5.0]))[0] == pytest.approx(0.0)

    def test_callable_alias(self):
        net = MLP([2, 2], seed=3)
        x = np.array([0.5, 0.5])
        np.testing.assert_allclose(net(x), net.forward(x))


class TestBackward:
    @pytest.mark.parametrize("activation", ["relu", "tanh"])
    def test_gradients_match_finite_differences(self, activation):
        rng = np.random.default_rng(0)
        net = MLP([3, 5, 2], activation=activation, seed=2)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_value() -> float:
            out = net.forward(x)
            return float(0.5 * np.sum((out - target) ** 2))

        out = net.forward(x)
        weight_grads, bias_grads = net.backward(x, out - target)
        analytic = net.gradients_as_list(weight_grads, bias_grads)

        epsilon = 1e-6
        params = net.parameters()
        for param, grad in zip(params, analytic):
            flat_param = param.reshape(-1)
            flat_grad = grad.reshape(-1)
            for index in range(0, flat_param.size, max(1, flat_param.size // 5)):
                original = flat_param[index]
                flat_param[index] = original + epsilon
                plus = loss_value()
                flat_param[index] = original - epsilon
                minus = loss_value()
                flat_param[index] = original
                numeric = (plus - minus) / (2 * epsilon)
                assert flat_grad[index] == pytest.approx(numeric, rel=1e-3, abs=1e-5)

    def test_gradient_descent_reduces_regression_loss(self):
        rng = np.random.default_rng(1)
        net = MLP([2, 16, 1], seed=4)
        x = rng.uniform(-1, 1, size=(64, 2))
        y = (x[:, :1] * 2.0 - x[:, 1:] * 0.5)

        def loss() -> float:
            return float(np.mean((net.forward(x) - y) ** 2))

        initial = loss()
        for _ in range(300):
            grad_out = 2.0 * (net.forward(x) - y) / len(x)
            wg, bg = net.backward(x, grad_out)
            for param, grad in zip(net.parameters(), net.gradients_as_list(wg, bg)):
                param -= 0.05 * grad
        assert loss() < initial * 0.1


class TestStateManagement:
    def test_state_roundtrip(self):
        net = MLP([3, 4, 2], seed=5)
        state = net.get_state()
        other = MLP([3, 4, 2], seed=99)
        other.set_state(state)
        x = np.array([0.2, -0.1, 0.4])
        np.testing.assert_allclose(other.forward(x), net.forward(x))

    def test_state_shape_mismatch_raises(self):
        net = MLP([3, 4, 2])
        other = MLP([3, 5, 2])
        with pytest.raises(ValueError):
            other.set_state(net.get_state())

    def test_copy_from_and_clone_are_deep(self):
        net = MLP([2, 3, 2], seed=6)
        clone = net.clone()
        clone.weights[0][0, 0] += 1.0
        assert net.weights[0][0, 0] != clone.weights[0][0, 0]

    def test_state_is_a_copy(self):
        net = MLP([2, 2], seed=7)
        state = net.get_state()
        state["weights"][0][0, 0] += 10.0
        assert net.weights[0][0, 0] != state["weights"][0][0, 0]


class TestHuberLoss:
    def test_quadratic_region(self):
        loss, grad = huber_loss_grad(np.array([0.5]), delta=1.0)
        assert loss[0] == pytest.approx(0.125)
        assert grad[0] == pytest.approx(0.5)

    def test_linear_region(self):
        loss, grad = huber_loss_grad(np.array([3.0]), delta=1.0)
        assert loss[0] == pytest.approx(0.5 + 2.0)
        assert grad[0] == pytest.approx(1.0)

    def test_gradient_is_clipped_symmetrically(self):
        _, grad = huber_loss_grad(np.array([-5.0, 5.0]), delta=2.0)
        np.testing.assert_allclose(grad, [-2.0, 2.0])

    @settings(max_examples=50, deadline=None)
    @given(error=st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_loss_nonnegative_and_grad_bounded(self, error):
        loss, grad = huber_loss_grad(np.array([error]), delta=1.0)
        assert loss[0] >= 0.0
        assert abs(grad[0]) <= 1.0
