"""Unit tests for the optimizers."""

import numpy as np
import pytest

from repro.rl.optimizers import SGD, Adam, Momentum, RMSProp, get_optimizer


def quadratic_descent(optimizer, steps: int = 200) -> float:
    """Minimise f(x) = ||x||^2 from a fixed start; return the final norm."""
    params = [np.array([3.0, -2.0]), np.array([[1.5]])]
    for _ in range(steps):
        grads = [2.0 * p for p in params]
        optimizer.step(params, grads)
    return float(sum(np.sum(p**2) for p in params))


class TestFactory:
    def test_known_names(self):
        for name, cls in [
            ("sgd", SGD),
            ("momentum", Momentum),
            ("rmsprop", RMSProp),
            ("adam", Adam),
        ]:
            assert isinstance(get_optimizer(name, 0.01), cls)

    def test_case_insensitive(self):
        assert isinstance(get_optimizer("ADAM", 0.01), Adam)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown optimizer"):
            get_optimizer("lion", 0.01)


class TestValidation:
    def test_learning_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            SGD(0.0)

    def test_momentum_range(self):
        with pytest.raises(ValueError):
            Momentum(0.01, momentum=1.0)

    def test_rmsprop_decay_range(self):
        with pytest.raises(ValueError):
            RMSProp(0.01, decay=1.5)

    def test_adam_beta_range(self):
        with pytest.raises(ValueError):
            Adam(0.01, beta1=1.0)

    def test_shape_mismatch_detected(self):
        optimizer = SGD(0.1)
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(3)], [np.zeros(4)])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(3)], [np.zeros(3), np.zeros(3)])


@pytest.mark.parametrize(
    "optimizer",
    [SGD(0.05), Momentum(0.02), RMSProp(0.05), Adam(0.1)],
    ids=["sgd", "momentum", "rmsprop", "adam"],
)
class TestConvergence:
    def test_minimises_quadratic(self, optimizer):
        assert quadratic_descent(optimizer) < 1e-2

    def test_updates_happen_in_place(self, optimizer):
        params = [np.ones(2)]
        reference = params[0]
        optimizer.step(params, [np.ones(2)])
        assert params[0] is reference
        assert not np.allclose(reference, np.ones(2))


class TestSGDExactness:
    def test_single_step_matches_formula(self):
        params = [np.array([1.0, 2.0])]
        SGD(0.5).step(params, [np.array([0.2, -0.4])])
        np.testing.assert_allclose(params[0], [0.9, 2.2])


class TestAdamBehaviour:
    def test_first_step_size_is_learning_rate(self):
        # With bias correction the first Adam step is ~lr * sign(grad).
        params = [np.array([0.0])]
        Adam(0.1).step(params, [np.array([7.0])])
        assert params[0][0] == pytest.approx(-0.1, rel=1e-3)

    def test_handles_sparse_gradients(self):
        params = [np.zeros(4)]
        adam = Adam(0.1)
        for _ in range(10):
            adam.step(params, [np.array([1.0, 0.0, 0.0, 0.0])])
        assert params[0][0] < -0.5
        np.testing.assert_allclose(params[0][1:], 0.0)
