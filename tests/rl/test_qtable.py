"""Unit tests for the tabular Q-learning baseline."""

import numpy as np
import pytest

from repro.rl.agent import Transition
from repro.rl.qtable import TabularQAgent, TabularQConfig, UniformDiscretizer


def make_agent(num_actions: int = 2, bins: int = 4, **kwargs) -> TabularQAgent:
    config = TabularQConfig(num_actions=num_actions, bins_per_feature=bins, **kwargs)
    discretizer = UniformDiscretizer(np.zeros(2), np.ones(2), bins_per_feature=bins)
    return TabularQAgent(config, discretizer)


class TestUniformDiscretizer:
    def test_bins_cover_the_range(self):
        discretizer = UniformDiscretizer(np.zeros(1), np.ones(1), bins_per_feature=4)
        assert discretizer.discretize(np.array([0.0])) == (0,)
        assert discretizer.discretize(np.array([0.3])) == (1,)
        assert discretizer.discretize(np.array([0.99])) == (3,)

    def test_out_of_range_values_are_clipped(self):
        discretizer = UniformDiscretizer(np.zeros(1), np.ones(1), bins_per_feature=4)
        assert discretizer.discretize(np.array([-5.0])) == (0,)
        assert discretizer.discretize(np.array([5.0])) == (3,)

    def test_multidimensional(self):
        discretizer = UniformDiscretizer(np.zeros(3), np.full(3, 10.0), bins_per_feature=2)
        assert discretizer.discretize(np.array([1.0, 6.0, 9.0])) == (0, 1, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDiscretizer(np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            UniformDiscretizer(np.zeros(2), np.ones(3))
        with pytest.raises(ValueError):
            UniformDiscretizer(np.zeros(2), np.ones(2), bins_per_feature=1)
        discretizer = UniformDiscretizer(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError):
            discretizer.discretize(np.zeros(3))


class TestTabularQConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TabularQConfig(num_actions=0)
        with pytest.raises(ValueError):
            TabularQConfig(num_actions=2, learning_rate=0.0)
        with pytest.raises(ValueError):
            TabularQConfig(num_actions=2, gamma=1.5)


class TestTabularQAgent:
    def test_unseen_states_have_zero_values(self):
        agent = make_agent()
        np.testing.assert_array_equal(agent.q_values(np.array([0.5, 0.5])), [0.0, 0.0])

    def test_single_update_moves_towards_target(self):
        agent = make_agent(learning_rate=0.5, gamma=0.0)
        observation = np.array([0.1, 0.1])
        agent.observe(
            Transition(
                state=observation,
                action=1,
                reward=2.0,
                next_state=np.array([0.9, 0.9]),
                done=False,
            )
        )
        assert agent.q_values(observation)[1] == pytest.approx(1.0)

    def test_terminal_transitions_do_not_bootstrap(self):
        agent = make_agent(learning_rate=1.0, gamma=0.9)
        next_observation = np.array([0.9, 0.9])
        # Give the next state a large value that must be ignored for done=True.
        agent.observe(
            Transition(next_observation, 0, 10.0, next_observation, done=True)
        )
        observation = np.array([0.1, 0.1])
        agent.observe(Transition(observation, 0, 1.0, next_observation, done=True))
        assert agent.q_values(observation)[0] == pytest.approx(1.0)

    def test_learns_greedy_action_in_two_state_chain(self):
        # State A: action 1 gives +1, action 0 gives 0.  Greedy policy should
        # prefer action 1 after a handful of updates.
        agent = make_agent(learning_rate=0.5, gamma=0.0, epsilon_decay_steps=1)
        state = np.array([0.2, 0.2])
        next_state = np.array([0.8, 0.8])
        for _ in range(20):
            agent.observe(Transition(state, 1, 1.0, next_state, done=False))
            agent.observe(Transition(state, 0, 0.0, next_state, done=False))
        assert agent.act(state, explore=False) == 1

    def test_bootstrapping_propagates_future_reward(self):
        agent = make_agent(learning_rate=1.0, gamma=0.9)
        state_a = np.array([0.1, 0.1])
        state_b = np.array([0.9, 0.9])
        # B leads to terminal reward 1; A leads to B with no reward.
        agent.observe(Transition(state_b, 0, 1.0, state_b, done=True))
        agent.observe(Transition(state_a, 0, 0.0, state_b, done=False))
        assert agent.q_values(state_a)[0] == pytest.approx(0.9)

    def test_visited_state_count_grows(self):
        agent = make_agent(bins=3)
        assert agent.num_visited_states == 0
        agent.act(np.array([0.1, 0.1]))
        agent.act(np.array([0.9, 0.9]))
        assert agent.num_visited_states == 2

    def test_end_episode_is_a_noop(self):
        agent = make_agent()
        agent.end_episode()
