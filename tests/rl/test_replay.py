"""Unit tests for replay buffers."""

import numpy as np
import pytest

from repro.rl.agent import Transition
from repro.rl.replay import (
    PrioritizedReplayBuffer,
    ReplayBuffer,
    pack_transitions,
    unpack_transitions,
)


def make_transition(value: float, action: int = 0, done: bool = False) -> Transition:
    return Transition(
        state=np.array([value, value]),
        action=action,
        reward=value,
        next_state=np.array([value + 1, value + 1]),
        done=done,
    )


class TestReplayBuffer:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0)

    def test_empty_buffer_cannot_be_sampled(self):
        with pytest.raises(ValueError):
            ReplayBuffer(4).sample(1)

    def test_bad_batch_size(self):
        buffer = ReplayBuffer(4)
        buffer.add(make_transition(1.0))
        with pytest.raises(ValueError):
            buffer.sample(0)

    def test_length_and_fullness(self):
        buffer = ReplayBuffer(3)
        assert len(buffer) == 0
        for value in range(3):
            buffer.add(make_transition(float(value)))
        assert len(buffer) == 3
        assert buffer.is_full

    def test_wraps_around_capacity(self):
        buffer = ReplayBuffer(3)
        for value in range(5):
            buffer.add(make_transition(float(value)))
        assert len(buffer) == 3
        rewards = {t.reward for _ in range(20) for t in buffer.sample(3)}
        assert rewards.issubset({2.0, 3.0, 4.0})
        assert 0.0 not in rewards

    def test_sampling_covers_contents(self):
        buffer = ReplayBuffer(10, seed=1)
        for value in range(10):
            buffer.add(make_transition(float(value)))
        rewards = {t.reward for _ in range(50) for t in buffer.sample(10)}
        assert rewards == {float(v) for v in range(10)}

    def test_oversized_batches_are_rejected(self):
        buffer = ReplayBuffer(8, seed=0)
        for value in range(3):
            buffer.add(make_transition(float(value)))
        with pytest.raises(ValueError, match="exceeds"):
            buffer.sample(4)
        with pytest.raises(ValueError, match="exceeds"):
            buffer.sample_arrays(4)
        assert len(buffer.sample(3)) == 3

    def test_sample_arrays_shapes(self):
        buffer = ReplayBuffer(8, seed=2)
        for value in range(8):
            buffer.add(make_transition(float(value), action=value % 3, done=value == 7))
        states, actions, rewards, next_states, dones = buffer.sample_arrays(8)
        assert states.shape == (8, 2)
        assert next_states.shape == (8, 2)
        assert actions.shape == rewards.shape == dones.shape == (8,)
        assert actions.dtype.kind == "i"
        assert set(np.unique(dones)).issubset({0.0, 1.0})

    def test_seeded_sampling_reproducible(self):
        a, b = ReplayBuffer(8, seed=3), ReplayBuffer(8, seed=3)
        for value in range(8):
            a.add(make_transition(float(value)))
            b.add(make_transition(float(value)))
        assert [t.reward for t in a.sample(8)] == [t.reward for t in b.sample(8)]

    def test_state_round_trip_resumes_sampling_stream(self):
        buffer = ReplayBuffer(8, seed=4)
        for value in range(6):
            buffer.add(make_transition(float(value)))
        buffer.sample(4)  # advance the RNG stream
        state = buffer.get_state()

        clone = ReplayBuffer(8, seed=99)
        clone.set_state(state)
        assert len(clone) == len(buffer)
        assert [t.reward for t in clone.sample(6)] == [t.reward for t in buffer.sample(6)]
        # The write cursor survives too: the next add overwrites the same slot.
        buffer.add(make_transition(77.0))
        clone.add(make_transition(77.0))
        assert [t.reward for t in buffer._storage] == [t.reward for t in clone._storage]

    def test_state_round_trip_rejects_overfull_payloads(self):
        buffer = ReplayBuffer(8, seed=0)
        for value in range(4):
            buffer.add(make_transition(float(value)))
        small = ReplayBuffer(2, seed=0)
        small.add(make_transition(9.0))
        with pytest.raises(ValueError, match="capacity"):
            small.set_state(buffer.get_state())
        # The failed restore must not have touched the buffer.
        assert len(small) == 1
        assert small.sample(1)[0].reward == 9.0


class TestPrioritizedReplayBuffer:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(0)
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(4, alpha=-1)

    def test_empty_buffer_cannot_be_sampled(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(4).sample(1)

    def test_sample_returns_weights_and_indices(self):
        buffer = PrioritizedReplayBuffer(8, seed=0)
        for value in range(8):
            buffer.add(make_transition(float(value)))
        transitions, indices, weights = buffer.sample(4)
        assert len(transitions) == 4
        assert indices.shape == (4,)
        assert weights.shape == (4,)
        assert np.all(weights > 0) and np.all(weights <= 1.0 + 1e-9)

    def test_high_priority_items_sampled_more_often(self):
        buffer = PrioritizedReplayBuffer(10, alpha=1.0, seed=1)
        for value in range(10):
            buffer.add(make_transition(float(value)))
        # Give item 0 a huge TD error and the rest tiny ones.
        buffer.update_priorities(np.arange(10), np.array([100.0] + [0.001] * 9))
        counts = np.zeros(10, dtype=int)
        for _ in range(50):
            _, indices, _ = buffer.sample(10)
            counts += np.bincount(indices, minlength=10)
        assert counts[0] > 300

    def test_oversized_batches_are_rejected(self):
        buffer = PrioritizedReplayBuffer(8, seed=0)
        for value in range(3):
            buffer.add(make_transition(float(value)))
        with pytest.raises(ValueError, match="exceeds"):
            buffer.sample(4)
        transitions, _, _ = buffer.sample(3)
        assert len(transitions) == 3

    def test_wraparound_overwrites_oldest(self):
        buffer = PrioritizedReplayBuffer(3, seed=2)
        for value in range(5):
            buffer.add(make_transition(float(value)))
        rewards = {
            t.reward for _ in range(30) for t in buffer.sample(3)[0]
        }
        assert rewards.issubset({2.0, 3.0, 4.0})

    def test_new_items_get_max_priority(self):
        buffer = PrioritizedReplayBuffer(4, alpha=1.0, seed=3)
        buffer.add(make_transition(0.0))
        buffer.update_priorities(np.array([0]), np.array([50.0]))
        buffer.add(make_transition(1.0))
        # The new item inherits the running max priority, so it is sampled
        # roughly as often as the high-priority item.
        counts = np.zeros(2, dtype=int)
        for _ in range(200):
            _, indices, _ = buffer.sample(2)
            counts += np.bincount(indices, minlength=2)
        assert counts[1] > 100

    def test_state_round_trip_resumes_sampling_stream(self):
        buffer = PrioritizedReplayBuffer(8, alpha=1.0, seed=5)
        for value in range(6):
            buffer.add(make_transition(float(value)))
        buffer.update_priorities(np.arange(6), np.linspace(0.5, 5.0, 6))
        buffer.sample(4)  # advance the RNG stream
        state = buffer.get_state()

        clone = PrioritizedReplayBuffer(8, alpha=1.0, seed=99)
        clone.set_state(state)
        original_transitions, original_indices, original_weights = buffer.sample(6)
        clone_transitions, clone_indices, clone_weights = clone.sample(6)
        np.testing.assert_array_equal(original_indices, clone_indices)
        np.testing.assert_allclose(original_weights, clone_weights)
        assert [t.reward for t in original_transitions] == [
            t.reward for t in clone_transitions
        ]


class TestPackTransitions:
    def test_round_trip_preserves_every_field(self):
        batch = [
            make_transition(float(value), action=value % 3, done=value == 4)
            for value in range(5)
        ]
        arrays = pack_transitions(batch)
        restored = unpack_transitions(arrays)
        assert len(restored) == 5
        for original, rebuilt in zip(batch, restored):
            np.testing.assert_array_equal(original.state, rebuilt.state)
            np.testing.assert_array_equal(original.next_state, rebuilt.next_state)
            assert original.action == rebuilt.action
            assert original.reward == rebuilt.reward
            assert original.done == rebuilt.done

    def test_empty_batch_round_trips(self):
        assert unpack_transitions(pack_transitions([])) == []
