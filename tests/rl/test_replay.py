"""Unit tests for replay buffers."""

import numpy as np
import pytest

from repro.rl.agent import Transition
from repro.rl.replay import PrioritizedReplayBuffer, ReplayBuffer


def make_transition(value: float, action: int = 0, done: bool = False) -> Transition:
    return Transition(
        state=np.array([value, value]),
        action=action,
        reward=value,
        next_state=np.array([value + 1, value + 1]),
        done=done,
    )


class TestReplayBuffer:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0)

    def test_empty_buffer_cannot_be_sampled(self):
        with pytest.raises(ValueError):
            ReplayBuffer(4).sample(1)

    def test_bad_batch_size(self):
        buffer = ReplayBuffer(4)
        buffer.add(make_transition(1.0))
        with pytest.raises(ValueError):
            buffer.sample(0)

    def test_length_and_fullness(self):
        buffer = ReplayBuffer(3)
        assert len(buffer) == 0
        for value in range(3):
            buffer.add(make_transition(float(value)))
        assert len(buffer) == 3
        assert buffer.is_full

    def test_wraps_around_capacity(self):
        buffer = ReplayBuffer(3)
        for value in range(5):
            buffer.add(make_transition(float(value)))
        assert len(buffer) == 3
        rewards = {t.reward for t in buffer.sample(50)}
        assert rewards.issubset({2.0, 3.0, 4.0})
        assert 0.0 not in rewards

    def test_sampling_covers_contents(self):
        buffer = ReplayBuffer(10, seed=1)
        for value in range(10):
            buffer.add(make_transition(float(value)))
        rewards = {t.reward for t in buffer.sample(500)}
        assert rewards == {float(v) for v in range(10)}

    def test_sample_arrays_shapes(self):
        buffer = ReplayBuffer(8, seed=2)
        for value in range(8):
            buffer.add(make_transition(float(value), action=value % 3, done=value == 7))
        states, actions, rewards, next_states, dones = buffer.sample_arrays(16)
        assert states.shape == (16, 2)
        assert next_states.shape == (16, 2)
        assert actions.shape == rewards.shape == dones.shape == (16,)
        assert actions.dtype.kind == "i"
        assert set(np.unique(dones)).issubset({0.0, 1.0})

    def test_seeded_sampling_reproducible(self):
        a, b = ReplayBuffer(8, seed=3), ReplayBuffer(8, seed=3)
        for value in range(8):
            a.add(make_transition(float(value)))
            b.add(make_transition(float(value)))
        assert [t.reward for t in a.sample(10)] == [t.reward for t in b.sample(10)]


class TestPrioritizedReplayBuffer:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(0)
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(4, alpha=-1)

    def test_empty_buffer_cannot_be_sampled(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(4).sample(1)

    def test_sample_returns_weights_and_indices(self):
        buffer = PrioritizedReplayBuffer(8, seed=0)
        for value in range(8):
            buffer.add(make_transition(float(value)))
        transitions, indices, weights = buffer.sample(4)
        assert len(transitions) == 4
        assert indices.shape == (4,)
        assert weights.shape == (4,)
        assert np.all(weights > 0) and np.all(weights <= 1.0 + 1e-9)

    def test_high_priority_items_sampled_more_often(self):
        buffer = PrioritizedReplayBuffer(10, alpha=1.0, seed=1)
        for value in range(10):
            buffer.add(make_transition(float(value)))
        # Give item 0 a huge TD error and the rest tiny ones.
        buffer.update_priorities(np.arange(10), np.array([100.0] + [0.001] * 9))
        _, indices, _ = buffer.sample(500)
        counts = np.bincount(indices, minlength=10)
        assert counts[0] > 300

    def test_wraparound_overwrites_oldest(self):
        buffer = PrioritizedReplayBuffer(3, seed=2)
        for value in range(5):
            buffer.add(make_transition(float(value)))
        transitions, _, _ = buffer.sample(100)
        rewards = {t.reward for t in transitions}
        assert rewards.issubset({2.0, 3.0, 4.0})

    def test_new_items_get_max_priority(self):
        buffer = PrioritizedReplayBuffer(4, alpha=1.0, seed=3)
        buffer.add(make_transition(0.0))
        buffer.update_priorities(np.array([0]), np.array([50.0]))
        buffer.add(make_transition(1.0))
        # The new item inherits the running max priority, so it is sampled
        # roughly as often as the high-priority item.
        _, indices, _ = buffer.sample(400)
        counts = np.bincount(indices, minlength=2)
        assert counts[1] > 100
