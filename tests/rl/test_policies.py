"""Unit tests for exploration policies and schedules."""

import numpy as np
import pytest

from repro.rl.policies import (
    ConstantSchedule,
    EpsilonGreedyPolicy,
    ExponentialDecaySchedule,
    LinearDecaySchedule,
    SoftmaxPolicy,
)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.3)
        assert schedule.value(0) == schedule.value(1000) == 0.3

    def test_linear_decay_endpoints(self):
        schedule = LinearDecaySchedule(1.0, 0.1, decay_steps=100)
        assert schedule.value(0) == pytest.approx(1.0)
        assert schedule.value(50) == pytest.approx(0.55)
        assert schedule.value(100) == pytest.approx(0.1)
        assert schedule.value(500) == pytest.approx(0.1)

    def test_linear_decay_validation(self):
        with pytest.raises(ValueError):
            LinearDecaySchedule(1.0, 0.1, decay_steps=0)

    def test_exponential_decay(self):
        schedule = ExponentialDecaySchedule(1.0, 0.01, decay=0.9)
        assert schedule.value(0) == pytest.approx(1.0)
        assert schedule.value(10) == pytest.approx(0.9**10)
        assert schedule.value(10_000) == pytest.approx(0.01)

    def test_exponential_decay_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(1.0, 0.01, decay=0.0)


class TestEpsilonGreedy:
    def test_greedy_when_not_exploring(self):
        policy = EpsilonGreedyPolicy(ConstantSchedule(1.0), seed=0)
        q = np.array([0.1, 5.0, -1.0])
        assert all(policy.select(q, explore=False) == 1 for _ in range(10))

    def test_zero_epsilon_is_always_greedy(self):
        policy = EpsilonGreedyPolicy(ConstantSchedule(0.0), seed=0)
        q = np.array([0.0, 1.0])
        assert all(policy.select(q) == 1 for _ in range(50))

    def test_full_epsilon_explores_all_actions(self):
        policy = EpsilonGreedyPolicy(ConstantSchedule(1.0), seed=1)
        q = np.array([10.0, 0.0, 0.0, 0.0])
        chosen = {policy.select(q) for _ in range(200)}
        assert chosen == {0, 1, 2, 3}

    def test_step_counter_advances_only_when_exploring_enabled(self):
        policy = EpsilonGreedyPolicy(LinearDecaySchedule(1.0, 0.0, 10), seed=2)
        for _ in range(5):
            policy.select(np.array([1.0, 0.0]), explore=False)
        assert policy.steps == 0
        for _ in range(5):
            policy.select(np.array([1.0, 0.0]), explore=True)
        assert policy.steps == 5
        assert policy.epsilon == pytest.approx(0.5)

    def test_rejects_bad_q_values(self):
        policy = EpsilonGreedyPolicy(ConstantSchedule(0.1))
        with pytest.raises(ValueError):
            policy.select(np.array([]))
        with pytest.raises(ValueError):
            policy.select(np.zeros((2, 2)))


class TestSoftmax:
    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            SoftmaxPolicy(temperature=0.0)

    def test_probabilities_sum_to_one(self):
        policy = SoftmaxPolicy(temperature=0.5)
        probabilities = policy.probabilities(np.array([1.0, 2.0, 3.0]))
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities > 0)

    def test_low_temperature_approaches_greedy(self):
        policy = SoftmaxPolicy(temperature=0.01, seed=0)
        q = np.array([0.0, 1.0, 0.5])
        selections = [policy.select(q) for _ in range(100)]
        assert selections.count(1) > 95

    def test_high_temperature_approaches_uniform(self):
        policy = SoftmaxPolicy(temperature=100.0, seed=1)
        q = np.array([0.0, 1.0])
        selections = [policy.select(q) for _ in range(1000)]
        assert 350 < selections.count(0) < 650

    def test_greedy_when_not_exploring(self):
        policy = SoftmaxPolicy(temperature=10.0, seed=2)
        assert policy.select(np.array([0.0, 3.0, 1.0]), explore=False) == 1

    def test_numerical_stability_with_large_values(self):
        policy = SoftmaxPolicy(temperature=1.0)
        probabilities = policy.probabilities(np.array([1e6, 1e6 + 1]))
        assert np.isfinite(probabilities).all()
        assert probabilities.sum() == pytest.approx(1.0)

    def test_rejects_bad_q_values(self):
        policy = SoftmaxPolicy()
        with pytest.raises(ValueError):
            policy.select(np.array([]))
