"""Unit and integration tests for the DQN agent and its variants."""

import numpy as np
import pytest

from repro.rl.agent import Transition
from repro.rl.dqn import DQNAgent, DQNConfig


def make_config(**overrides) -> DQNConfig:
    defaults = dict(
        observation_dim=3,
        num_actions=4,
        hidden_sizes=(16,),
        learning_rate=5e-3,
        buffer_capacity=500,
        batch_size=16,
        min_buffer_size=16,
        target_sync_interval=20,
        epsilon_decay_steps=200,
        seed=0,
    )
    defaults.update(overrides)
    return DQNConfig(**defaults)


class SimpleBanditEnv:
    """A contextual bandit: the best action equals the argmax of the state."""

    def __init__(self, dim: int = 3, seed: int = 0) -> None:
        self.dim = dim
        self.rng = np.random.default_rng(seed)

    def observation(self) -> np.ndarray:
        return self.rng.uniform(0.0, 1.0, size=self.dim)

    def reward(self, observation: np.ndarray, action: int) -> float:
        return 1.0 if action == int(np.argmax(observation)) else 0.0


class TestConfigValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            make_config(observation_dim=0)
        with pytest.raises(ValueError):
            make_config(num_actions=0)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            make_config(gamma=1.5)

    def test_rejects_buffer_smaller_than_batch(self):
        with pytest.raises(ValueError):
            make_config(buffer_capacity=8, batch_size=16)

    def test_rejects_min_buffer_below_batch(self):
        with pytest.raises(ValueError):
            make_config(min_buffer_size=4, batch_size=16)


class TestQValueShapes:
    def test_q_values_shape(self):
        agent = DQNAgent(make_config())
        q = agent.q_values(np.zeros(3))
        assert q.shape == (4,)

    def test_dueling_q_values_shape(self):
        agent = DQNAgent(make_config(dueling=True))
        q = agent.q_values(np.zeros(3))
        assert q.shape == (4,) or q.shape == (1, 4)
        assert np.asarray(q).size == 4

    def test_act_returns_valid_action(self):
        agent = DQNAgent(make_config())
        for _ in range(20):
            action = agent.act(np.random.default_rng(0).uniform(size=3))
            assert 0 <= action < 4

    def test_greedy_action_matches_q_argmax(self):
        agent = DQNAgent(make_config())
        observation = np.array([0.3, 0.5, 0.1])
        q = np.asarray(agent.q_values(observation)).reshape(-1)
        assert agent.act(observation, explore=False) == int(np.argmax(q))


class TestLearningMachinery:
    def test_no_training_before_min_buffer(self):
        agent = DQNAgent(make_config(min_buffer_size=32, batch_size=32))
        for _ in range(10):
            agent.observe(
                Transition(np.zeros(3), 0, 0.0, np.zeros(3), done=False)
            )
        assert agent.train_steps == 0

    def test_training_starts_after_min_buffer(self):
        agent = DQNAgent(make_config())
        for _ in range(40):
            agent.observe(Transition(np.zeros(3), 0, 1.0, np.zeros(3), done=False))
        assert agent.train_steps > 0
        assert np.isfinite(agent.last_loss)

    def test_target_network_syncs_periodically(self):
        agent = DQNAgent(make_config(target_sync_interval=5))
        for _ in range(30):
            agent.observe(Transition(np.ones(3), 1, 1.0, np.ones(3), done=False))
        # After a sync the target equals the online network exactly.
        if agent.train_steps % 5 == 0:
            np.testing.assert_allclose(
                agent.target.weights[0], agent.online.weights[0]
            )
        assert agent.train_steps >= 5

    def test_terminal_targets_ignore_bootstrap(self):
        agent = DQNAgent(make_config(gamma=0.99))
        rewards = np.array([1.0, -1.0])
        next_states = np.zeros((2, 3))
        dones = np.array([1.0, 1.0])
        targets = agent._compute_targets(rewards, next_states, dones)
        np.testing.assert_allclose(targets, rewards)

    def test_double_dqn_uses_online_argmax(self):
        agent = DQNAgent(make_config(double=True, seed=3))
        rewards = np.zeros(1)
        next_states = np.random.default_rng(1).uniform(size=(1, 3))
        dones = np.zeros(1)
        online_q = agent._batch_q(agent.online, next_states)
        target_q = agent._batch_q(agent.target, next_states)
        expected = agent.config.gamma * target_q[0, int(np.argmax(online_q[0]))]
        assert agent._compute_targets(rewards, next_states, dones)[0] == pytest.approx(
            expected
        )

    def test_dueling_aggregation_centres_advantages(self):
        agent = DQNAgent(make_config(dueling=True))
        raw = np.array([[2.0, 1.0, 2.0, 3.0, 6.0]])  # V=2, A=[1,2,3,6]
        q = agent._aggregate(raw)
        np.testing.assert_allclose(q, [[0.0, 1.0, 2.0, 5.0]])

    def test_dueling_backward_is_consistent_with_forward(self):
        agent = DQNAgent(make_config(dueling=True))
        rng = np.random.default_rng(2)
        raw = rng.normal(size=(5, 5))
        grad_q = rng.normal(size=(5, 4))
        # Finite-difference check of the aggregation Jacobian-vector product.
        raw_grad = agent._aggregate_backward(grad_q)
        epsilon = 1e-6
        for i in range(raw.shape[1]):
            perturbed = raw.copy()
            perturbed[:, i] += epsilon
            numeric = (agent._aggregate(perturbed) - agent._aggregate(raw)) / epsilon
            expected = (numeric * grad_q).sum(axis=1)
            np.testing.assert_allclose(raw_grad[:, i], expected, atol=1e-5)

    def test_gradient_clipping_bounds_norm(self):
        agent = DQNAgent(make_config(gradient_clip=1.0))
        grads = [np.full((4, 4), 10.0), np.full(4, 10.0)]
        agent._clip_gradients(grads)
        total_norm = np.sqrt(sum(np.sum(g**2) for g in grads))
        assert total_norm == pytest.approx(1.0, rel=1e-6)

    def test_checkpoint_roundtrip(self):
        agent = DQNAgent(make_config(seed=5))
        for _ in range(40):
            agent.observe(Transition(np.ones(3), 2, 1.0, np.ones(3), done=False))
        state = agent.get_state()
        clone = DQNAgent(make_config(seed=99))
        clone.set_state(state)
        observation = np.array([0.1, 0.7, 0.3])
        np.testing.assert_allclose(clone.q_values(observation), agent.q_values(observation))
        assert clone.train_steps == agent.train_steps


@pytest.mark.parametrize(
    "variant",
    [
        {},
        {"double": True},
        {"dueling": True},
        {"double": True, "dueling": True},
        {"prioritized_replay": True},
    ],
    ids=["dqn", "double", "dueling", "double-dueling", "prioritized"],
)
def test_variants_learn_a_contextual_bandit(variant):
    """Every DQN variant learns to pick argmax(state) on a 3-armed contextual
    bandit clearly better than chance."""
    config = make_config(
        observation_dim=3,
        num_actions=3,
        hidden_sizes=(32,),
        learning_rate=5e-3,
        gamma=0.0,
        epsilon_decay_steps=400,
        seed=7,
        **variant,
    )
    agent = DQNAgent(config)
    env = SimpleBanditEnv(dim=3, seed=7)
    for _ in range(600):
        observation = env.observation()
        action = agent.act(observation)
        reward = env.reward(observation, action)
        agent.observe(Transition(observation, action, reward, env.observation(), done=True))

    evaluation_env = SimpleBanditEnv(dim=3, seed=11)
    correct = 0
    trials = 200
    for _ in range(trials):
        observation = evaluation_env.observation()
        if agent.act(observation, explore=False) == int(np.argmax(observation)):
            correct += 1
    assert correct / trials > 0.7, f"accuracy {correct / trials} too low for {variant}"
