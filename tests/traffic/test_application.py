"""Unit tests for phase-based application workloads."""

import pytest

from repro.noc.topology import Mesh
from repro.traffic.application import Phase, PhasedWorkload, default_phases

MESH = Mesh(4, 4)


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(duration_cycles=0, pattern="uniform", rate_flits_per_node_cycle=0.1)
        with pytest.raises(ValueError):
            Phase(duration_cycles=10, pattern="uniform", rate_flits_per_node_cycle=-0.1)

    def test_default_phases_cover_low_and_high_load(self):
        phases = default_phases()
        rates = [phase.rate_flits_per_node_cycle for phase in phases]
        assert min(rates) < 0.1
        assert max(rates) > 0.25
        patterns = {phase.pattern for phase in phases}
        assert "hotspot" in patterns


class TestPhasedWorkload:
    def test_requires_at_least_one_phase(self):
        with pytest.raises(ValueError):
            PhasedWorkload(MESH, [])

    def test_phase_boundaries(self):
        phases = [
            Phase(100, "uniform", 0.1),
            Phase(200, "transpose", 0.3),
        ]
        workload = PhasedWorkload(MESH, phases)
        assert workload.total_cycles == 300
        assert workload.phase_index_at(0) == 0
        assert workload.phase_index_at(99) == 0
        assert workload.phase_index_at(100) == 1
        assert workload.phase_index_at(299) == 1

    def test_repeats_by_default(self):
        phases = [Phase(50, "uniform", 0.1), Phase(50, "neighbor", 0.2)]
        workload = PhasedWorkload(MESH, phases)
        assert workload.phase_index_at(100) == 0
        assert workload.phase_index_at(175) == 1

    def test_non_repeating_workload_goes_quiet(self):
        workload = PhasedWorkload(MESH, [Phase(10, "uniform", 1.0)], repeat=False)
        assert workload.phase_index_at(100) is None
        assert workload.generate(100) == []
        assert workload.offered_load(100) == 0.0

    def test_offered_load_follows_active_phase(self):
        phases = [Phase(100, "uniform", 0.05), Phase(100, "uniform", 0.4)]
        workload = PhasedWorkload(MESH, phases)
        assert workload.offered_load(50) == pytest.approx(0.05)
        assert workload.offered_load(150) == pytest.approx(0.4)

    def test_generated_volume_tracks_phase_rate(self):
        phases = [Phase(500, "uniform", 0.05), Phase(500, "uniform", 0.4)]
        workload = PhasedWorkload(MESH, phases, seed=3)
        low = sum(len(workload.generate(cycle)) for cycle in range(0, 500))
        high = sum(len(workload.generate(cycle)) for cycle in range(500, 1000))
        assert high > 3 * low

    def test_packet_creation_cycles_match_request(self):
        workload = PhasedWorkload(MESH, default_phases(phase_cycles=100), seed=1)
        packets = workload.generate(250)
        assert all(packet.creation_cycle == 250 for packet in packets)


class TestNextInjectionCycle:
    def test_quiet_phase_skips_to_the_phase_boundary(self):
        phases = [Phase(100, "uniform", 0.0), Phase(100, "uniform", 0.3)]
        workload = PhasedWorkload(MESH, phases, seed=2)
        assert workload.next_injection_cycle(0) == 100
        assert workload.next_injection_cycle(99) == 100
        assert workload.next_injection_cycle(100) == 100
        assert workload.next_injection_cycle(150) == 150

    def test_repeating_workload_wraps_phase_boundaries(self):
        phases = [Phase(100, "uniform", 0.0), Phase(100, "uniform", 0.3)]
        workload = PhasedWorkload(MESH, phases, seed=2, repeat=True)
        # Pass 2: cycles 200-299 are the quiet phase again.
        assert workload.next_injection_cycle(250) == 300

    def test_finished_non_repeating_workload_never_injects(self):
        phases = [Phase(50, "uniform", 0.2)]
        workload = PhasedWorkload(MESH, phases, seed=2, repeat=False)
        assert workload.next_injection_cycle(49) == 49
        assert workload.next_injection_cycle(50) is None

    def test_hint_contract_matches_generate(self):
        phases = [
            Phase(60, "uniform", 0.0),
            Phase(60, "uniform", 0.4),
            Phase(60, "uniform", 0.0),
        ]
        workload = PhasedWorkload(MESH, phases, seed=7)
        for cycle in range(200):
            hint = workload.next_injection_cycle(cycle)
            if hint is None or hint > cycle:
                assert workload.generate(cycle) == []
