"""Unit tests for the TrafficGenerator binding pattern x injection."""

import pytest

from repro.noc.topology import Mesh
from repro.traffic.generator import TrafficGenerator
from repro.traffic.injection import BernoulliInjection
from repro.traffic.patterns import TransposePattern, UniformRandomPattern

MESH = Mesh(4, 4)


class TestTrafficGenerator:
    def test_from_names_builds_bernoulli_uniform(self):
        generator = TrafficGenerator.from_names(MESH, "uniform", 0.2, packet_size=4)
        assert isinstance(generator.pattern, UniformRandomPattern)
        assert generator.offered_load() == pytest.approx(0.2)

    def test_packets_have_requested_size_and_cycle(self):
        generator = TrafficGenerator.from_names(MESH, "uniform", 0.8, packet_size=3, seed=1)
        packets = generator.generate(7)
        assert packets, "a 0.8 rate should create packets almost every cycle"
        assert all(packet.size == 3 for packet in packets)
        assert all(packet.creation_cycle == 7 for packet in packets)
        assert all(packet.src != packet.dst for packet in packets)

    def test_self_directed_destinations_are_skipped(self):
        generator = TrafficGenerator(
            MESH,
            TransposePattern(MESH),
            BernoulliInjection(1.0, packet_size=1),
            packet_size=1,
        )
        packets = generator.generate(0)
        diagonal = {MESH.node_at(i, i) for i in range(4)}
        sources = {packet.src for packet in packets}
        assert sources == set(MESH.nodes()) - diagonal

    def test_activity_window(self):
        generator = TrafficGenerator.from_names(
            MESH, "uniform", 1.0, packet_size=1, seed=2
        )
        generator.start_cycle = 10
        generator.end_cycle = 20
        assert generator.generate(5) == []
        assert generator.generate(25) == []
        assert generator.generate(15)

    def test_rate_controls_packet_volume(self):
        low = TrafficGenerator.from_names(MESH, "uniform", 0.05, packet_size=4, seed=3)
        high = TrafficGenerator.from_names(MESH, "uniform", 0.4, packet_size=4, seed=3)
        low_count = sum(len(low.generate(cycle)) for cycle in range(2000))
        high_count = sum(len(high.generate(cycle)) for cycle in range(2000))
        assert high_count > 4 * low_count

    def test_seeds_give_reproducible_streams(self):
        first = TrafficGenerator.from_names(MESH, "uniform", 0.3, packet_size=2, seed=9)
        second = TrafficGenerator.from_names(MESH, "uniform", 0.3, packet_size=2, seed=9)
        for cycle in range(50):
            lhs = [(p.src, p.dst) for p in first.generate(cycle)]
            rhs = [(p.src, p.dst) for p in second.generate(cycle)]
            assert lhs == rhs

    def test_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            TrafficGenerator(
                MESH,
                UniformRandomPattern(MESH),
                BernoulliInjection(0.1, packet_size=4),
                packet_size=0,
            )


class TestNextInjectionCycle:
    def test_active_generator_reports_the_same_cycle(self):
        generator = TrafficGenerator.from_names(MESH, "uniform", 0.2, seed=1)
        assert generator.next_injection_cycle(0) == 0
        assert generator.next_injection_cycle(123) == 123

    def test_quiescent_generator_never_injects(self):
        generator = TrafficGenerator.from_names(MESH, "uniform", 0.0, seed=1)
        assert generator.next_injection_cycle(0) is None

    def test_window_start_is_reported(self):
        generator = TrafficGenerator(
            MESH,
            UniformRandomPattern(MESH),
            BernoulliInjection(0.2, packet_size=4),
            start_cycle=300,
            end_cycle=400,
        )
        assert generator.next_injection_cycle(0) == 300
        assert generator.next_injection_cycle(350) == 350
        assert generator.next_injection_cycle(400) is None
        assert generator.next_injection_cycle(1_000) is None

    def test_hint_contract_matches_generate(self):
        generator = TrafficGenerator(
            MESH,
            UniformRandomPattern(MESH),
            BernoulliInjection(0.5, packet_size=2),
            start_cycle=10,
            end_cycle=20,
            seed=5,
        )
        for cycle in range(30):
            hint = generator.next_injection_cycle(cycle)
            if hint is None or hint > cycle:
                assert generator.generate(cycle) == []
