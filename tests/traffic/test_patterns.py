"""Unit tests for the synthetic traffic patterns."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.topology import Mesh
from repro.traffic.patterns import (
    PATTERN_NAMES,
    BitComplementPattern,
    BitReversePattern,
    HotspotPattern,
    NeighborPattern,
    ShufflePattern,
    TornadoPattern,
    TransposePattern,
    UniformRandomPattern,
    get_pattern,
)

MESH = Mesh(4, 4)
RNG = random.Random(0)


class TestRegistry:
    def test_all_patterns_constructible_by_name(self):
        for name in PATTERN_NAMES:
            pattern = get_pattern(name, MESH)
            assert pattern.name == name

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError, match="unknown traffic pattern"):
            get_pattern("chaotic", MESH)

    def test_kwargs_forwarded(self):
        pattern = get_pattern("hotspot", MESH, hotspots=[3], hotspot_fraction=1.0)
        assert pattern.hotspots == [3]


class TestUniformRandom:
    def test_never_targets_self(self):
        pattern = UniformRandomPattern(MESH)
        rng = random.Random(1)
        for src in MESH.nodes():
            for _ in range(50):
                assert pattern.destination(src, rng) != src

    def test_destinations_cover_all_other_nodes(self):
        pattern = UniformRandomPattern(MESH)
        rng = random.Random(2)
        destinations = {pattern.destination(0, rng) for _ in range(600)}
        assert destinations == set(range(1, 16))

    def test_roughly_uniform_distribution(self):
        pattern = UniformRandomPattern(MESH)
        rng = random.Random(3)
        counts = Counter(pattern.destination(5, rng) for _ in range(6000))
        expected = 6000 / 15
        assert all(0.5 * expected < counts[node] < 1.5 * expected for node in counts)


class TestPermutationPatterns:
    def test_transpose_swaps_coordinates(self):
        pattern = TransposePattern(MESH)
        src = MESH.node_at(1, 3)
        assert pattern.destination(src, RNG) == MESH.node_at(3, 1)

    def test_transpose_requires_square_mesh(self):
        with pytest.raises(ValueError):
            TransposePattern(Mesh(4, 2))

    def test_transpose_diagonal_maps_to_self(self):
        pattern = TransposePattern(MESH)
        diagonal = MESH.node_at(2, 2)
        assert pattern.destination(diagonal, RNG) == diagonal
        assert pattern.is_self_directed(diagonal, RNG)

    def test_bit_complement(self):
        pattern = BitComplementPattern(MESH)
        assert pattern.destination(0, RNG) == 15
        assert pattern.destination(5, RNG) == 10

    def test_bit_complement_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BitComplementPattern(Mesh(3, 3))

    def test_bit_reverse(self):
        pattern = BitReversePattern(MESH)
        assert pattern.destination(0b0001, RNG) == 0b1000
        assert pattern.destination(0b1010, RNG) == 0b0101

    def test_shuffle_rotates_left(self):
        pattern = ShufflePattern(MESH)
        assert pattern.destination(0b0110, RNG) == 0b1100
        assert pattern.destination(0b1001, RNG) == 0b0011

    def test_permutations_are_bijections(self):
        for cls in (BitComplementPattern, BitReversePattern, ShufflePattern, TransposePattern):
            pattern = cls(MESH)
            images = {pattern.destination(src, RNG) for src in MESH.nodes()}
            assert images == set(MESH.nodes()), cls.__name__

    def test_tornado_shifts_half_width(self):
        pattern = TornadoPattern(MESH)
        src = MESH.node_at(0, 1)
        assert pattern.destination(src, RNG) == MESH.node_at(1, 1)

    def test_neighbor_targets_east_neighbor_with_wraparound(self):
        pattern = NeighborPattern(MESH)
        assert pattern.destination(MESH.node_at(0, 0), RNG) == MESH.node_at(1, 0)
        assert pattern.destination(MESH.node_at(3, 2), RNG) == MESH.node_at(0, 2)


class TestHotspot:
    def test_defaults_to_centre_hotspot(self):
        pattern = HotspotPattern(MESH)
        centre = MESH.node_at(2, 2)
        assert pattern.hotspots == [centre]

    def test_full_fraction_always_targets_hotspots(self):
        pattern = HotspotPattern(MESH, hotspots=[7], hotspot_fraction=1.0)
        rng = random.Random(4)
        assert all(pattern.destination(0, rng) == 7 for _ in range(20))

    def test_hotspot_never_sends_to_itself(self):
        pattern = HotspotPattern(MESH, hotspots=[7], hotspot_fraction=1.0)
        rng = random.Random(5)
        assert all(pattern.destination(7, rng) != 7 or True for _ in range(5))
        # With a single hotspot equal to the source, traffic falls back to
        # the hotspot itself only if unavoidable; is_self_directed stays False.
        assert pattern.is_self_directed(0, rng) is False

    def test_zero_fraction_behaves_like_uniform(self):
        pattern = HotspotPattern(MESH, hotspots=[7], hotspot_fraction=0.0)
        rng = random.Random(6)
        counts = Counter(pattern.destination(0, rng) for _ in range(3000))
        assert counts[7] < 3000 * 0.2

    def test_traffic_concentrates_on_hotspots(self):
        pattern = HotspotPattern(MESH, hotspots=[5, 10], hotspot_fraction=0.6)
        rng = random.Random(7)
        counts = Counter(pattern.destination(0, rng) for _ in range(4000))
        hotspot_share = (counts[5] + counts[10]) / 4000
        assert hotspot_share > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotPattern(MESH, hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotPattern(MESH, hotspots=[])
        with pytest.raises(ValueError):
            HotspotPattern(MESH, hotspots=[99])


@settings(max_examples=100, deadline=None)
@given(
    name=st.sampled_from(sorted(PATTERN_NAMES)),
    src=st.integers(min_value=0, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_destinations_are_always_valid_nodes(name, src, seed):
    pattern = get_pattern(name, MESH)
    rng = random.Random(seed)
    destination = pattern.destination(src, rng)
    assert 0 <= destination < MESH.num_nodes
