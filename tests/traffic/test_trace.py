"""Unit tests for trace record/replay."""

import pytest

from repro.noc.topology import Mesh
from repro.traffic.generator import TrafficGenerator
from repro.traffic.trace import (
    TraceRecord,
    TraceTrafficSource,
    load_trace,
    record_trace,
    save_trace,
)

MESH = Mesh(4, 4)


def make_records() -> list[TraceRecord]:
    return [
        TraceRecord(cycle=0, src=0, dst=5, size=4),
        TraceRecord(cycle=0, src=3, dst=12, size=2),
        TraceRecord(cycle=7, src=1, dst=14, size=4),
    ]


class TestRecordTrace:
    def test_captures_generator_output(self):
        generator = TrafficGenerator.from_names(MESH, "uniform", 0.3, packet_size=4, seed=5)
        records = record_trace(generator, cycles=200)
        assert records
        assert all(0 <= record.cycle < 200 for record in records)
        assert all(record.size == 4 for record in records)

    def test_rejects_negative_cycles(self):
        generator = TrafficGenerator.from_names(MESH, "uniform", 0.3)
        with pytest.raises(ValueError):
            record_trace(generator, cycles=-1)

    def test_record_to_packet(self):
        record = TraceRecord(cycle=4, src=1, dst=2, size=3)
        packet = record.to_packet()
        assert (packet.src, packet.dst, packet.size, packet.creation_cycle) == (1, 2, 3, 4)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        records = make_records()
        path = tmp_path / "trace.jsonl"
        save_trace(records, path)
        assert load_trace(path) == records

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(make_records(), path)
        path.write_text(path.read_text() + "\n\n")
        assert load_trace(path) == make_records()


class TestTraceTrafficSource:
    def test_replays_records_at_their_cycles(self):
        source = TraceTrafficSource(make_records())
        cycle0 = source.generate(0)
        assert {(p.src, p.dst) for p in cycle0} == {(0, 5), (3, 12)}
        assert source.generate(1) == []
        assert [(p.src, p.dst) for p in source.generate(7)] == [(1, 14)]
        assert len(source) == 3

    def test_cycle_offset_shifts_replay(self):
        source = TraceTrafficSource(make_records(), cycle_offset=10)
        assert source.generate(0) == []
        assert len(source.generate(10)) == 2
        assert len(source.generate(17)) == 1

    def test_periodic_replay(self):
        source = TraceTrafficSource(make_records(), repeat_every=20)
        assert len(source.generate(0)) == 2
        assert len(source.generate(20)) == 2
        assert len(source.generate(47)) == 1

    def test_rejects_bad_repeat_period(self):
        with pytest.raises(ValueError):
            TraceTrafficSource(make_records(), repeat_every=0)

    def test_replay_is_deterministic_against_recording(self):
        generator = TrafficGenerator.from_names(MESH, "transpose", 0.2, packet_size=4, seed=8)
        records = record_trace(generator, cycles=100)
        source = TraceTrafficSource(records)
        replayed = []
        for cycle in range(100):
            replayed.extend((p.creation_cycle, p.src, p.dst) for p in source.generate(cycle))
        recorded = [(r.cycle, r.src, r.dst) for r in records]
        assert replayed == recorded


class TestNextInjectionCycle:
    def test_reports_next_record_cycle(self):
        source = TraceTrafficSource(make_records())
        assert source.next_injection_cycle(0) == 0
        assert source.next_injection_cycle(1) == 7
        assert source.next_injection_cycle(7) == 7
        assert source.next_injection_cycle(8) is None

    def test_respects_cycle_offset(self):
        source = TraceTrafficSource(make_records(), cycle_offset=40)
        assert source.next_injection_cycle(0) == 40
        assert source.next_injection_cycle(41) == 47
        assert source.next_injection_cycle(48) is None

    def test_wraps_with_repeat_period(self):
        source = TraceTrafficSource(make_records(), repeat_every=10)
        assert source.next_injection_cycle(8) == 10  # next period's cycle-0 records
        assert source.next_injection_cycle(10) == 10
        assert source.next_injection_cycle(15) == 17
        assert source.next_injection_cycle(995) == 997

    def test_empty_trace_never_injects(self):
        source = TraceTrafficSource([])
        assert source.next_injection_cycle(0) is None

    def test_hint_contract_matches_generate(self):
        source = TraceTrafficSource(make_records(), cycle_offset=3, repeat_every=12)
        for cycle in range(60):
            hint = source.next_injection_cycle(cycle)
            if hint is None or hint > cycle:
                assert source.generate(cycle) == []
            if hint == cycle:
                assert source.generate(cycle)
