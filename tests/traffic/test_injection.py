"""Unit tests for injection processes."""

import random

import pytest

from repro.traffic.injection import BernoulliInjection, BurstyInjection


class TestBernoulliInjection:
    def test_rate_matches_long_run_average(self):
        injection = BernoulliInjection(rate_flits_per_node_cycle=0.2, packet_size=4)
        rng = random.Random(0)
        cycles = 40_000
        injected = sum(injection.should_inject(0, cycle, rng) for cycle in range(cycles))
        measured_rate = injected * 4 / cycles
        assert measured_rate == pytest.approx(0.2, rel=0.1)

    def test_zero_rate_never_injects(self):
        injection = BernoulliInjection(0.0, packet_size=4)
        rng = random.Random(1)
        assert not any(injection.should_inject(0, cycle, rng) for cycle in range(1000))

    def test_offered_load_reports_nominal_rate(self):
        injection = BernoulliInjection(0.35, packet_size=4)
        assert injection.offered_load(0) == pytest.approx(0.35)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            BernoulliInjection(-0.1, packet_size=4)

    def test_rejects_rate_beyond_one_packet_per_cycle(self):
        with pytest.raises(ValueError):
            BernoulliInjection(5.0, packet_size=4)

    def test_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            BernoulliInjection(0.1, packet_size=0)


class TestBurstyInjection:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyInjection(0.4, 0.05, packet_size=4, mean_on=0)
        with pytest.raises(ValueError):
            BurstyInjection(5.0, 0.05, packet_size=4)

    def test_long_run_rate_between_on_and_off(self):
        injection = BurstyInjection(
            rate_on=0.4, rate_off=0.02, packet_size=4, mean_on=100, mean_off=300
        )
        rng = random.Random(2)
        cycles = 60_000
        injected = sum(injection.should_inject(0, cycle, rng) for cycle in range(cycles))
        measured_rate = injected * 4 / cycles
        assert 0.02 < measured_rate < 0.4

    def test_offered_load_is_duty_cycle_weighted(self):
        injection = BurstyInjection(
            rate_on=0.4, rate_off=0.0, packet_size=4, mean_on=100, mean_off=300
        )
        assert injection.offered_load(0) == pytest.approx(0.1)

    def test_nodes_have_independent_burst_state(self):
        injection = BurstyInjection(
            rate_on=1.0, rate_off=0.0, packet_size=1, mean_on=50, mean_off=50
        )
        rng = random.Random(3)
        node_a = sum(injection.should_inject(0, cycle, rng) for cycle in range(2000))
        node_b = sum(injection.should_inject(1, cycle, rng) for cycle in range(2000))
        # Both nodes should spend roughly half their time bursting.
        assert 400 < node_a < 1600
        assert 400 < node_b < 1600

    def test_burstiness_creates_clusters(self):
        injection = BurstyInjection(
            rate_on=1.0, rate_off=0.0, packet_size=1, mean_on=200, mean_off=200
        )
        rng = random.Random(4)
        decisions = [injection.should_inject(0, cycle, rng) for cycle in range(4000)]
        # Count state flips: a bursty process flips far less often than a
        # Bernoulli process with the same mean rate.
        flips = sum(1 for a, b in zip(decisions, decisions[1:]) if a != b)
        assert flips < 1000


class TestQuiescence:
    def test_bernoulli_zero_rate_is_quiescent(self):
        assert BernoulliInjection(0.0, packet_size=4).is_quiescent()
        assert not BernoulliInjection(0.1, packet_size=4).is_quiescent()

    def test_bursty_quiescent_only_when_both_rates_are_zero(self):
        assert BurstyInjection(0.0, 0.0, packet_size=4).is_quiescent()
        assert not BurstyInjection(0.3, 0.0, packet_size=4).is_quiescent()
        assert not BurstyInjection(0.0, 0.1, packet_size=4).is_quiescent()
