"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.noc.network import NoCSimulator, SimulatorConfig
from repro.noc.packet import Packet
from repro.noc.topology import Mesh
from repro.traffic.generator import TrafficGenerator


@pytest.fixture
def mesh4() -> Mesh:
    return Mesh(4, 4)


@pytest.fixture
def small_config() -> SimulatorConfig:
    return SimulatorConfig(width=4, height=4, num_vcs=2, buffer_depth=4, packet_size=4)


def make_simulator(
    width: int = 4,
    *,
    rate: float = 0.1,
    pattern: str = "uniform",
    routing: str = "xy",
    packet_size: int = 4,
    seed: int = 0,
    **config_kwargs,
) -> NoCSimulator:
    """Build a simulator with a Bernoulli traffic generator attached."""
    config = SimulatorConfig(
        width=width, routing=routing, packet_size=packet_size, seed=seed, **config_kwargs
    )
    simulator = NoCSimulator(config)
    traffic = TrafficGenerator.from_names(
        simulator.topology, pattern, rate, packet_size=packet_size, seed=seed
    )
    simulator.traffic = traffic
    return simulator


def single_packet_simulator(
    src: int, dst: int, *, width: int = 4, size: int = 4, routing: str = "xy", **kwargs
) -> tuple[NoCSimulator, Packet]:
    """A simulator with exactly one packet queued at its source NI."""
    config = SimulatorConfig(width=width, routing=routing, packet_size=size, **kwargs)
    simulator = NoCSimulator(config)
    packet = Packet(src=src, dst=dst, size=size, creation_cycle=0)
    simulator.inject_packet(packet)
    return simulator, packet


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)
