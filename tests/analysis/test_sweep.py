"""Tests for the load/latency and routing sweeps.

These double as simulator-behaviour regression tests: the sweeps must show
the canonical NoC shapes (monotone latency growth with load, saturation at
high load, throughput tracking offered load below saturation).
"""

import pytest

from repro.analysis.sweep import (
    LoadLatencyPoint,
    load_latency_sweep,
    routing_throughput_sweep,
    saturation_rate,
)
from repro.noc.network import SimulatorConfig

CONFIG = SimulatorConfig(width=4)
SWEEP_KWARGS = dict(warmup_cycles=200, measure_cycles=600, seed=1)


@pytest.fixture(scope="module")
def uniform_sweep() -> list[LoadLatencyPoint]:
    return load_latency_sweep(CONFIG, [0.05, 0.20, 0.60], pattern="uniform", **SWEEP_KWARGS)


class TestLoadLatencySweep:
    def test_validation(self):
        with pytest.raises(ValueError):
            load_latency_sweep(CONFIG, [])
        with pytest.raises(ValueError):
            load_latency_sweep(CONFIG, [-0.1])

    def test_one_point_per_rate(self, uniform_sweep):
        assert [point.injection_rate for point in uniform_sweep] == [0.05, 0.20, 0.60]

    def test_latency_increases_with_load(self, uniform_sweep):
        latencies = [point.average_latency for point in uniform_sweep]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_low_load_latency_is_near_zero_load_bound(self, uniform_sweep):
        # ~3 hops + 3 cycles serialisation on a 4x4 mesh at 4-flit packets.
        assert uniform_sweep[0].average_latency < 12.0

    def test_throughput_tracks_offered_load_below_saturation(self, uniform_sweep):
        low = uniform_sweep[0]
        assert low.throughput == pytest.approx(low.offered_load, abs=0.03)
        assert not low.saturated

    def test_extreme_load_saturates(self):
        points = load_latency_sweep(CONFIG, [0.9], pattern="transpose", **SWEEP_KWARGS)
        assert points[0].saturated
        assert points[0].throughput < points[0].offered_load

    def test_saturation_rate_helper(self, uniform_sweep):
        rate = saturation_rate(uniform_sweep)
        assert rate in [point.injection_rate for point in uniform_sweep]
        assert saturation_rate([]) == 0.0

    def test_dvfs_level_shifts_the_curve(self):
        fast = load_latency_sweep(CONFIG, [0.10], dvfs_level=0, **SWEEP_KWARGS)
        slow = load_latency_sweep(CONFIG, [0.10], dvfs_level=3, **SWEEP_KWARGS)
        assert slow[0].average_latency > fast[0].average_latency
        assert slow[0].energy_per_flit_pj < fast[0].energy_per_flit_pj

    def test_event_engine_sweeps_identically(self, uniform_sweep):
        event_points = load_latency_sweep(
            CONFIG, [0.05, 0.20, 0.60], pattern="uniform", engine="event", **SWEEP_KWARGS
        )
        assert event_points == uniform_sweep  # wall fields excluded (compare=False)


class TestRoutingThroughputSweep:
    def test_validation(self):
        with pytest.raises(ValueError):
            routing_throughput_sweep(CONFIG, [], ["xy"])
        with pytest.raises(ValueError):
            routing_throughput_sweep(CONFIG, [-0.1], ["xy"])

    def test_sweeps_each_algorithm(self):
        results = routing_throughput_sweep(
            CONFIG, [0.05, 0.3], ["xy", "odd_even"], pattern="transpose", **SWEEP_KWARGS
        )
        assert set(results) == {"xy", "odd_even"}
        assert all(len(points) == 2 for points in results.values())

    def test_event_engine_sweeps_identically(self):
        kwargs = dict(warmup_cycles=100, measure_cycles=300, seed=1)
        cycle_results = routing_throughput_sweep(
            CONFIG, [0.1], ["xy", "odd_even"], pattern="transpose", **kwargs
        )
        event_results = routing_throughput_sweep(
            CONFIG, [0.1], ["xy", "odd_even"], pattern="transpose", engine="event", **kwargs
        )
        assert event_results == cycle_results

    def test_adaptive_routing_not_worse_at_low_load(self):
        results = routing_throughput_sweep(
            CONFIG, [0.05], ["xy", "odd_even"], pattern="transpose", **SWEEP_KWARGS
        )
        xy_latency = results["xy"][0].average_latency
        oe_latency = results["odd_even"][0].average_latency
        # Low-load latency should be comparable (within a few cycles).
        assert abs(xy_latency - oe_latency) < 5.0
