"""Unit tests for analysis metrics and report formatting."""

import pytest

from repro.analysis.metrics import (
    energy_delay_product,
    percent_change,
    relative_improvement,
    summarize_trace,
)
from repro.analysis.reporting import format_series, format_table, save_rows_csv
from repro.baselines import StaticPolicy
from repro.core.config import ExperimentConfig, TrafficSpec
from repro.core.training import evaluate_controller


class TestMetrics:
    def test_edp(self):
        assert energy_delay_product(10.0, 20.0) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            energy_delay_product(-1.0, 5.0)

    def test_percent_change(self):
        assert percent_change(100.0, 110.0) == pytest.approx(10.0)
        assert percent_change(100.0, 80.0) == pytest.approx(-20.0)
        with pytest.raises(ValueError):
            percent_change(0.0, 5.0)

    def test_relative_improvement_is_reduction(self):
        # Energy dropped from 100 to 80 -> 20% improvement.
        assert relative_improvement(100.0, 80.0) == pytest.approx(20.0)
        assert relative_improvement(100.0, 120.0) == pytest.approx(-20.0)

    def test_summarize_trace_adds_edp(self):
        experiment = ExperimentConfig.small(
            traffic=TrafficSpec.synthetic("uniform", 0.1),
            epoch_cycles=200,
        )
        trace = evaluate_controller(experiment, StaticPolicy(0), num_epochs=2)
        summary = summarize_trace(trace)
        assert summary["edp"] == pytest.approx(
            summary["energy_per_flit_pj"] * summary["average_latency"]
        )


class TestFormatTable:
    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Table I")

    def test_contains_headers_and_values(self):
        rows = [
            {"policy": "drl", "latency": 12.345, "energy": 1234.5},
            {"policy": "static", "latency": 10.0, "energy": 2000.0},
        ]
        text = format_table(rows, title="Table I — controllers")
        assert "Table I" in text
        assert "policy" in text and "latency" in text
        assert "drl" in text and "static" in text
        assert "12.3" in text
        assert "1,234" in text or "1234" in text

    def test_column_subset_via_headers(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, headers=["a"])
        assert "b" not in text.splitlines()[0]

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows)
        assert "3" in text


class TestFormatSeries:
    def test_renders_x_and_series(self):
        text = format_series(
            "rate",
            [0.1, 0.2],
            {"latency": [8.0, 12.0], "throughput": [0.1, 0.19]},
            title="Figure 1",
        )
        assert "Figure 1" in text
        assert "rate" in text and "latency" in text and "throughput" in text
        assert "0.2" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"y": [1.0]})


class TestSaveRowsCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = save_rows_csv(rows, tmp_path / "nested" / "out.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,x"
        assert len(content) == 3

    def test_empty_rows_create_empty_file(self, tmp_path):
        path = save_rows_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""
